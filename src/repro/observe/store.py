"""Append-only longitudinal store for reliability artifacts.

The store is a single JSONL file: one entry per line, written through
:func:`repro.utils.jsonsafe.dump_json_safe` with sorted keys and rewritten
in a deterministic order on every ingest — so ingesting the same artifacts
twice, or in a shuffled order, produces a byte-identical file.  Entries are
content-addressed (``id`` is the SHA-256 of the entry body), which makes
the store append-only in the useful sense: ingestion can only add new
entries or observe that an identical one already exists; nothing is ever
mutated or dropped.

Each entry carries:

* ``kind`` — ``sweep-scenario``, ``campaign``, ``profile`` or ``benchmark``;
* ``version`` — a caller-supplied label (``--version``) or, for artifacts
  that carry one, the first 12 hex digits of their registry digest, so runs
  remain comparable across code versions without extra bookkeeping;
* ``key`` — the comparability key: registry digest, structure digest and
  scenario provenance where the artifact provides them;
* ``metrics`` — the recomputable summary statistics the trend engine
  consumes (counts, CIs with their endpoints, outcome tallies, throughput).

Artifact classification is structural, mirroring
:func:`repro.report.model.load_results`: a dict with ``scenarios`` is a
sweep, ``records`` + ``baseline_accuracy`` is a campaign, the
``profile``/``gemm`` shape written by ``--profile`` is a profile, and any
other JSON object is treated as a benchmark payload whose numeric leaves
are flattened into dotted metric paths.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.core.results import CampaignResult
from repro.core.sweep import _VOLATILE_KEYS
from repro.utils.durable import durable_write_text
from repro.utils.jsonsafe import dump_json_safe

#: Store schema version (bumped on breaking entry-shape changes).
STORE_VERSION = 1

_UNVERSIONED = "unversioned"


def _ci_width(ci: dict | None) -> float | None:
    if not ci:
        return None
    low, high = ci.get("low"), ci.get("high")
    if low is None or high is None:
        return None
    return high - low


def _campaign_metrics(result: CampaignResult) -> dict:
    """The trend-relevant slice of a campaign summary.

    Everything here is recomputable from the records (counts, CIs, outcome
    tallies) except ``throughput_trials_per_second``, which is explicitly
    observational and never participates in regression flags.
    """
    from repro.core import stats

    summary = result.summary()
    sdc = stats.sdc_count(summary["outcomes"])
    n = summary["num_trials"]
    wall = result.wall_seconds
    return {
        "num_trials": n,
        "baseline_accuracy": summary["baseline_accuracy"],
        "mean_accuracy_drop": summary["mean_accuracy_drop"],
        "std_accuracy_drop": summary["std_accuracy_drop"],
        "p95_accuracy_drop": summary["p95_accuracy_drop"],
        "confidence": summary["confidence"],
        "mean_drop_ci": summary["mean_drop_ci"],
        "mean_drop_ci_width": _ci_width(summary["mean_drop_ci"]),
        "mean_drop_ci_bootstrap": summary["mean_drop_ci_bootstrap"],
        "outcomes": summary["outcomes"],
        "sdc_count": sdc,
        "sdc_rate": summary["sdc_rate"],
        "sdc_rate_ci": summary["sdc_rate_ci"],
        "throughput_trials_per_second": (n / wall) if wall > 0 else None,
    }


def _campaign_structure_digest(result: CampaignResult) -> str:
    """Structure digest of a standalone campaign's records.

    Mirrors :meth:`repro.core.sweep.SweepResult.structure_digest` (volatile
    accuracy floats stripped) so campaign entries get the same
    cross-version comparability key as sweep scenarios.
    """
    hasher = hashlib.sha256()
    for record in result.records:
        line = record.to_dict()
        stripped = {k: v for k, v in line.items() if k not in _VOLATILE_KEYS}
        hasher.update(json.dumps(stripped, sort_keys=True).encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def _numeric_leaves(payload: Any, prefix: str = "") -> dict[str, float]:
    """Flatten the numeric leaves of a JSON structure into dotted paths."""
    out: dict[str, float] = {}
    if isinstance(payload, bool):
        return out
    if isinstance(payload, (int, float)):
        out[prefix or "value"] = payload
        return out
    if isinstance(payload, dict):
        for key in sorted(payload):
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(_numeric_leaves(payload[key], path))
    elif isinstance(payload, list):
        for index, item in enumerate(payload):
            path = f"{prefix}.{index}" if prefix else str(index)
            out.update(_numeric_leaves(item, path))
    return out


def _classify(payload: dict, source: str, version: str | None) -> list[dict]:
    """Turn one artifact payload into store entry bodies (without ids)."""
    if "scenarios" in payload and isinstance(payload["scenarios"], list):
        return _sweep_entries(payload, source, version)
    if "records" in payload and "baseline_accuracy" in payload:
        return [_campaign_entry(payload, source, version)]
    if "profile" in payload and "gemm" in payload:
        return [_profile_entry(payload, source, version)]
    return [_benchmark_entry(payload, source, version)]


def _label(version: str | None, registry_digest: str | None) -> str:
    if version:
        return version
    if registry_digest:
        return str(registry_digest)[:12]
    return _UNVERSIONED


def _sweep_entries(payload: dict, source: str, version: str | None) -> list[dict]:
    registry = payload.get("registry_digest")
    structure = payload.get("structure_digest")
    entries = []
    for scenario in payload["scenarios"]:
        if "scenario" not in scenario or "result" not in scenario:
            raise ValueError(
                f"{source}: sweep scenario entries need 'scenario' and 'result' keys"
            )
        result = CampaignResult.from_dict(scenario["result"])
        entries.append(
            {
                "store_version": STORE_VERSION,
                "kind": "sweep-scenario",
                "scenario": scenario["scenario"],
                "version": _label(version, registry),
                "source": source,
                "key": {
                    "registry_digest": registry,
                    "structure_digest": structure,
                    "provenance": scenario.get("provenance"),
                },
                "metrics": _campaign_metrics(result),
            }
        )
    if not entries:
        raise ValueError(f"{source}: sweep artifact contains no scenarios")
    return entries


def _campaign_entry(payload: dict, source: str, version: str | None) -> dict:
    result = CampaignResult.from_dict(payload)
    provenance = result.provenance or {}
    registry = provenance.get("registry_digest")
    return {
        "store_version": STORE_VERSION,
        "kind": "campaign",
        "scenario": result.strategy or "campaign",
        "version": _label(version, registry),
        "source": source,
        "key": {
            "registry_digest": registry,
            "structure_digest": _campaign_structure_digest(result),
            "provenance": result.provenance,
        },
        "metrics": _campaign_metrics(result),
    }


def _profile_entry(payload: dict, source: str, version: str | None) -> dict:
    return {
        "store_version": STORE_VERSION,
        "kind": "profile",
        "scenario": source,
        "version": _label(version, None),
        "source": source,
        "key": {"registry_digest": None, "structure_digest": None, "provenance": None},
        "metrics": _numeric_leaves(payload),
    }


def _benchmark_entry(payload: dict, source: str, version: str | None) -> dict:
    return {
        "store_version": STORE_VERSION,
        "kind": "benchmark",
        "scenario": source,
        "version": _label(version, None),
        "source": source,
        "key": {"registry_digest": None, "structure_digest": None, "provenance": None},
        "metrics": _numeric_leaves(payload),
    }


def _entry_id(body: dict) -> str:
    return hashlib.sha256(
        dump_json_safe(body, sort_keys=True).encode("utf-8")
    ).hexdigest()[:16]


def _sort_key(entry: dict) -> tuple:
    return (
        entry.get("kind", ""),
        entry.get("scenario", ""),
        entry.get("version", ""),
        entry.get("id", ""),
    )


class LongitudinalStore:
    """Content-addressed JSONL store with deterministic on-disk order."""

    def __init__(self, path: Path | str):
        self.path = Path(path)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def entries(self) -> list[dict]:
        """All stored entries, in on-disk (deterministic) order."""
        if not self.path.exists():
            return []
        entries = []
        for lineno, line in enumerate(self.path.read_text().splitlines(), start=1):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{self.path}:{lineno}: corrupt store line: {exc}") from None
            if not isinstance(entry, dict) or "id" not in entry:
                raise ValueError(f"{self.path}:{lineno}: store lines must be entry objects")
            entries.append(entry)
        return entries

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def ingest(
        self,
        artifacts: Sequence[Path | str] | Iterable[Path | str],
        *,
        version: str | None = None,
    ) -> dict:
        """Ingest artifact files and rewrite the store deterministically.

        Returns ``{"added": n, "duplicates": m, "total": k}``.  Duplicate
        entries (identical content hash) are recognised, not re-added, so
        repeated ingestion is idempotent.
        """
        existing = {entry["id"]: entry for entry in self.entries()}
        added = duplicates = 0
        for artifact in artifacts:
            path = Path(artifact)
            try:
                payload = json.loads(path.read_text())
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path} is not valid JSON: {exc}") from None
            if not isinstance(payload, dict):
                raise ValueError(
                    f"{path} holds a JSON {type(payload).__name__}, not an object"
                )
            for body in _classify(payload, path.name, version):
                entry_id = _entry_id(body)
                if entry_id in existing:
                    duplicates += 1
                    continue
                existing[entry_id] = {"id": entry_id, **body}
                added += 1
        ordered = sorted(existing.values(), key=_sort_key)
        text = "".join(dump_json_safe(entry, sort_keys=True) + "\n" for entry in ordered)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Durable rewrite: the store is the accumulated history of every
        # ingested run — a crash mid-rewrite must not truncate it.
        durable_write_text(self.path, text)
        return {"added": added, "duplicates": duplicates, "total": len(ordered)}
