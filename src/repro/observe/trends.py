"""Trend series and interval-gated regression flags over the store.

:func:`build_trends` turns store entries into per-scenario time series of
mean accuracy drop, SDC rate, mean-drop CI width and per-trial throughput,
ordered by version label.  A shift between consecutive points is flagged as
a regression **only** when the interval-overlap test says it is
significant:

* mean accuracy drop — the stored Student-t intervals
  (:func:`repro.core.stats.mean_t_interval` endpoints) must be disjoint,
  with the newer interval entirely above the older one;
* SDC rate — Wilson intervals recomputed from ``(sdc_count, num_trials)``
  through :func:`repro.core.stats.wilson_interval` must be disjoint in the
  worsening direction.

Point deltas never flag: a higher mean with overlapping intervals is noise
until the data says otherwise.  CI width and throughput are tracked as
informational trajectories only — they carry no interval, so they can
never raise a flag.  Disjoint intervals in the *improving* direction are
recorded separately under ``improvements``.

The function is pure and the output dict is fully ordered (scenarios and
benchmark series sorted by name, points by version label then entry id),
so rendering it twice from the same store is byte-identical.
"""

from __future__ import annotations

from typing import Iterable

from repro.core import stats

#: Trends schema version (bumped on breaking shape changes).
TRENDS_VERSION = 1

_SCENARIO_KINDS = ("campaign", "sweep-scenario")


def _point(entry: dict) -> dict:
    metrics = entry.get("metrics", {})
    return {
        "id": entry.get("id"),
        "version": entry.get("version"),
        "source": entry.get("source"),
        "structure_digest": (entry.get("key") or {}).get("structure_digest"),
        "num_trials": metrics.get("num_trials"),
        "mean_accuracy_drop": metrics.get("mean_accuracy_drop"),
        "mean_drop_ci": metrics.get("mean_drop_ci"),
        "ci_width": metrics.get("mean_drop_ci_width"),
        "sdc_count": metrics.get("sdc_count"),
        "sdc_rate": metrics.get("sdc_rate"),
        "confidence": metrics.get("confidence"),
        "throughput_trials_per_second": metrics.get("throughput_trials_per_second"),
    }


def _interval(ci: dict | None) -> tuple[float, float] | None:
    if not ci:
        return None
    low, high = ci.get("low"), ci.get("high")
    if low is None or high is None:
        return None
    return float(low), float(high)


def _wilson(point: dict, confidence: float) -> tuple[float, float] | None:
    count, n = point.get("sdc_count"), point.get("num_trials")
    if count is None or not n:
        return None
    ci = stats.wilson_interval(int(count), int(n), confidence)
    return ci.low, ci.high


def _shift(old: tuple[float, float] | None, new: tuple[float, float] | None) -> str | None:
    """Interval-overlap verdict: ``regression``/``improvement``/None.

    ``regression`` means the newer interval sits entirely above the older
    one (both metrics here are higher-is-worse); overlap means no verdict.
    """
    if old is None or new is None:
        return None
    if new[0] > old[1]:
        return "regression"
    if new[1] < old[0]:
        return "improvement"
    return None


def _flag(scenario: str, metric: str, prev: dict, curr: dict,
          old: tuple[float, float], new: tuple[float, float]) -> dict:
    return {
        "scenario": scenario,
        "metric": metric,
        "from_version": prev["version"],
        "to_version": curr["version"],
        "from_interval": {"low": old[0], "high": old[1]},
        "to_interval": {"low": new[0], "high": new[1]},
    }


def _scenario_series(scenario: str, kind: str, points: list[dict], confidence: float) -> dict:
    regressions: list[dict] = []
    improvements: list[dict] = []
    for prev, curr in zip(points, points[1:]):
        checks = (
            ("mean_accuracy_drop", _interval(prev["mean_drop_ci"]), _interval(curr["mean_drop_ci"])),
            ("sdc_rate", _wilson(prev, confidence), _wilson(curr, confidence)),
        )
        for metric, old, new in checks:
            verdict = _shift(old, new)
            if verdict == "regression":
                regressions.append(_flag(scenario, metric, prev, curr, old, new))
            elif verdict == "improvement":
                improvements.append(_flag(scenario, metric, prev, curr, old, new))
    return {
        "scenario": scenario,
        "kind": kind,
        "points": points,
        "regressions": regressions,
        "improvements": improvements,
    }


def build_trends(entries: Iterable[dict], *, confidence: float = 0.95) -> dict:
    """Build the deterministic trend/regression dict from store entries."""
    scenario_groups: dict[tuple[str, str], list[dict]] = {}
    bench_groups: dict[tuple[str, str], list[dict]] = {}
    versions: set[str] = set()
    for entry in entries:
        version = entry.get("version") or ""
        versions.add(version)
        kind = entry.get("kind")
        if kind in _SCENARIO_KINDS:
            key = (kind, entry.get("scenario") or "")
            scenario_groups.setdefault(key, []).append(_point(entry))
        else:
            source = entry.get("scenario") or entry.get("source") or ""
            for metric, value in sorted((entry.get("metrics") or {}).items()):
                bench_groups.setdefault((source, metric), []).append(
                    {"id": entry.get("id"), "version": version, "value": value}
                )

    scenarios = []
    for kind, scenario in sorted(scenario_groups):
        points = sorted(
            scenario_groups[(kind, scenario)],
            key=lambda p: (p["version"] or "", p["id"] or ""),
        )
        scenarios.append(_scenario_series(scenario, kind, points, confidence))

    benchmarks = [
        {
            "source": source,
            "metric": metric,
            "points": sorted(points, key=lambda p: (p["version"], p["id"] or "")),
        }
        for (source, metric), points in sorted(bench_groups.items())
    ]

    num_regressions = sum(len(s["regressions"]) for s in scenarios)
    return {
        "trends_version": TRENDS_VERSION,
        "confidence": confidence,
        "versions": sorted(versions),
        "num_scenarios": len(scenarios),
        "num_regressions": num_regressions,
        "scenarios": scenarios,
        "benchmarks": benchmarks,
    }
