"""Self-contained HTML rendering of a reliability report.

One output file, zero external assets: styling is inline CSS, box plots
are inline SVG built here from the report's box statistics.  The renderer
consumes only the machine-readable report dict of
:func:`~repro.report.model.build_report`, never live result objects, so
any archived report JSON can be re-rendered later.
"""

from __future__ import annotations

import html as html_module

#: Severity class -> (display label, CSS colour).  Orange/red shades scale
#: with severity; masked faults render as a calm grey-green.
_OUTCOME_STYLE = {
    "masked": ("masked", "#7fb48c"),
    "tolerable": ("tolerable", "#d9c86b"),
    "sdc": ("SDC", "#e08a4a"),
    "critical": ("critical", "#c94f42"),
}

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, Helvetica, Arial, sans-serif;
       margin: 2rem auto; max-width: 75rem; padding: 0 1rem; color: #222; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: 0.75rem 0; font-size: 0.9rem; }
th, td { border: 1px solid #ccc; padding: 0.3rem 0.6rem; text-align: right; }
th { background: #f2f2f2; } td.name, th.name { text-align: left; font-family: monospace; }
.tiles { display: flex; gap: 1rem; flex-wrap: wrap; margin: 1rem 0; }
.tile { border: 1px solid #ddd; border-radius: 6px; padding: 0.75rem 1.25rem; min-width: 9rem; }
.tile .value { font-size: 1.4rem; font-weight: 600; }
.tile .label { font-size: 0.8rem; color: #666; }
.sevbar { display: flex; height: 1rem; border-radius: 3px; overflow: hidden;
          min-width: 12rem; border: 1px solid #bbb; }
.sevbar div { height: 100%; }
.legend { font-size: 0.8rem; color: #444; margin: 0.5rem 0; }
.legend span { display: inline-block; width: 0.8rem; height: 0.8rem; border-radius: 2px;
               margin: 0 0.25rem 0 0.9rem; vertical-align: middle; }
.ci { color: #666; font-size: 0.85em; white-space: nowrap; }
.scenario { border-top: 2px solid #eee; padding-top: 0.5rem; }
footer { margin-top: 2.5rem; color: #888; font-size: 0.8rem; }
svg text { font-family: inherit; }
"""


def _esc(value: object) -> str:
    return html_module.escape(str(value), quote=True)


def _fmt(value: float | None, digits: int = 3) -> str:
    if value is None:
        return "–"
    return f"{value:.{digits}f}"


def _fmt_ci(ci: dict | None, digits: int = 3) -> str:
    if ci is None:
        return "<span class='ci'>n/a</span>"
    return (
        f"<span class='ci'>[{_fmt(ci['low'], digits)}, {_fmt(ci['high'], digits)}]</span>"
    )


def _severity_bar(outcomes: dict[str, int]) -> str:
    total = sum(outcomes.values())
    if total == 0:
        return "<span class='ci'>no trials</span>"
    parts = []
    for outcome, (label, colour) in _OUTCOME_STYLE.items():
        count = outcomes.get(outcome, 0)
        if count == 0:
            continue
        width = 100.0 * count / total
        parts.append(
            f"<div style='width:{width:.2f}%;background:{colour}' "
            f"title='{_esc(label)}: {count}/{total}'></div>"
        )
    return f"<div class='sevbar'>{''.join(parts)}</div>"


def _legend() -> str:
    items = "".join(
        f"<span style='background:{colour}'></span>{_esc(label)}"
        for label, colour in _OUTCOME_STYLE.values()
    )
    return f"<div class='legend'>severity:{items}</div>"


def boxplot_svg(
    boxes: dict[str, dict], *, width: int = 520, height: int = 190, title: str = ""
) -> str:
    """Inline SVG box-and-whisker plot of accuracy drop per group.

    ``boxes`` maps group label -> five-number summary dict (the report's
    per-scenario ``boxes``).  Groups are ordered numerically when all
    labels parse as numbers, lexically otherwise.
    """
    if not boxes:
        return "<span class='ci'>no grouped trials</span>"

    def _group_key(label: str):
        try:
            return (0, float(label), label)
        except ValueError:
            return (1, 0.0, label)

    labels = sorted(boxes, key=_group_key)
    low = min(min(boxes[l]["minimum"] for l in labels), 0.0)
    high = max(max(boxes[l]["maximum"] for l in labels), 1e-9)
    span = high - low or 1.0
    margin_left, margin_bottom, margin_top = 46, 26, 12
    plot_w = width - margin_left - 10
    plot_h = height - margin_bottom - margin_top

    def y(value: float) -> float:
        return margin_top + plot_h * (1.0 - (value - low) / span)

    slot = plot_w / len(labels)
    box_w = min(34.0, slot * 0.5)
    parts = [
        f"<svg viewBox='0 0 {width} {height}' width='{width}' height='{height}' "
        "role='img' xmlns='http://www.w3.org/2000/svg'>"
    ]
    if title:
        parts.append(
            f"<title>{_esc(title)}</title>"
        )
    # y axis: zero line + min/max ticks
    for value in (low, 0.0, high):
        parts.append(
            f"<line x1='{margin_left}' y1='{y(value):.1f}' x2='{width - 10}' "
            f"y2='{y(value):.1f}' stroke='#ddd' stroke-width='1'/>"
            f"<text x='{margin_left - 4}' y='{y(value) + 3:.1f}' font-size='9' "
            f"text-anchor='end' fill='#666'>{value:.2f}</text>"
        )
    for index, label in enumerate(labels):
        box = boxes[label]
        cx = margin_left + slot * (index + 0.5)
        x0, x1 = cx - box_w / 2, cx + box_w / 2
        # whiskers
        parts.append(
            f"<line x1='{cx:.1f}' y1='{y(box['minimum']):.1f}' x2='{cx:.1f}' "
            f"y2='{y(box['q1']):.1f}' stroke='#555'/>"
            f"<line x1='{cx:.1f}' y1='{y(box['q3']):.1f}' x2='{cx:.1f}' "
            f"y2='{y(box['maximum']):.1f}' stroke='#555'/>"
            f"<line x1='{x0:.1f}' y1='{y(box['minimum']):.1f}' x2='{x1:.1f}' "
            f"y2='{y(box['minimum']):.1f}' stroke='#555'/>"
            f"<line x1='{x0:.1f}' y1='{y(box['maximum']):.1f}' x2='{x1:.1f}' "
            f"y2='{y(box['maximum']):.1f}' stroke='#555'/>"
        )
        # interquartile box + median + mean dot
        box_top, box_bottom = y(box["q3"]), y(box["q1"])
        parts.append(
            f"<rect x='{x0:.1f}' y='{box_top:.1f}' width='{box_w:.1f}' "
            f"height='{max(box_bottom - box_top, 1.0):.1f}' fill='#9ec5e8' "
            f"stroke='#37648f'><title>{_esc(label)}: median {box['median']:.3f}, "
            f"mean {box['mean']:.3f}, n={box['count']}</title></rect>"
            f"<line x1='{x0:.1f}' y1='{y(box['median']):.1f}' x2='{x1:.1f}' "
            f"y2='{y(box['median']):.1f}' stroke='#1d3a56' stroke-width='2'/>"
            f"<circle cx='{cx:.1f}' cy='{y(box['mean']):.1f}' r='2.4' fill='#c94f42'/>"
        )
        parts.append(
            f"<text x='{cx:.1f}' y='{height - 10}' font-size='10' text-anchor='middle' "
            f"fill='#444'>{_esc(label)}</text>"
        )
    parts.append(
        f"<text x='{margin_left + plot_w / 2:.1f}' y='{height - 0.5}' font-size='9' "
        "text-anchor='middle' fill='#888'>armed fault sites</text></svg>"
    )
    return "".join(parts)


def line_svg(
    labels: list[str],
    values: list[float | None],
    *,
    bands: list[tuple[float, float] | None] | None = None,
    width: int = 520,
    height: int = 150,
    title: str = "",
    colour: str = "#37648f",
    digits: int = 3,
) -> str:
    """Inline SVG line chart of one metric across version labels.

    ``values`` may contain ``None`` (gaps in the series); ``bands`` is an
    optional per-point ``(low, high)`` confidence band drawn as a shaded
    polygon behind the line.  Rendering is deterministic: same inputs,
    same bytes.
    """
    numeric = [v for v in values if v is not None]
    if bands:
        numeric += [b[0] for b in bands if b] + [b[1] for b in bands if b]
    if not numeric:
        return "<span class='ci'>no data</span>"
    low, high = min(numeric), max(numeric)
    if low == high:
        low, high = low - 0.5, high + 0.5
    span = high - low
    margin_left, margin_bottom, margin_top = 52, 24, 12
    plot_w = width - margin_left - 10
    plot_h = height - margin_bottom - margin_top
    slot = plot_w / max(len(labels), 1)

    def x(index: int) -> float:
        return margin_left + slot * (index + 0.5)

    def y(value: float) -> float:
        return margin_top + plot_h * (1.0 - (value - low) / span)

    parts = [
        f"<svg viewBox='0 0 {width} {height}' width='{width}' height='{height}' "
        "role='img' xmlns='http://www.w3.org/2000/svg'>"
    ]
    if title:
        parts.append(f"<title>{_esc(title)}</title>")
    for value in (low, high):
        parts.append(
            f"<line x1='{margin_left}' y1='{y(value):.1f}' x2='{width - 10}' "
            f"y2='{y(value):.1f}' stroke='#ddd' stroke-width='1'/>"
            f"<text x='{margin_left - 4}' y='{y(value) + 3:.1f}' font-size='9' "
            f"text-anchor='end' fill='#666'>{value:.{digits}f}</text>"
        )
    if bands:
        band_points = [
            (i, band) for i, band in enumerate(bands) if band is not None
        ]
        if len(band_points) >= 2:
            upper = " ".join(f"{x(i):.1f},{y(b[1]):.1f}" for i, b in band_points)
            lower = " ".join(
                f"{x(i):.1f},{y(b[0]):.1f}" for i, b in reversed(band_points)
            )
            parts.append(
                f"<polygon points='{upper} {lower}' fill='{colour}' "
                "fill-opacity='0.15' stroke='none'/>"
            )
    polyline = [
        f"{x(i):.1f},{y(v):.1f}" for i, v in enumerate(values) if v is not None
    ]
    if len(polyline) >= 2:
        parts.append(
            f"<polyline points='{' '.join(polyline)}' fill='none' "
            f"stroke='{colour}' stroke-width='2'/>"
        )
    for index, value in enumerate(values):
        if value is None:
            continue
        parts.append(
            f"<circle cx='{x(index):.1f}' cy='{y(value):.1f}' r='3' fill='{colour}'>"
            f"<title>{_esc(labels[index])}: {value:.{digits}f}</title></circle>"
        )
    for index, label in enumerate(labels):
        parts.append(
            f"<text x='{x(index):.1f}' y='{height - 8}' font-size='9' "
            f"text-anchor='middle' fill='#444'>{_esc(label)}</text>"
        )
    parts.append("</svg>")
    return "".join(parts)


def _trend_flag_rows(flags: list[dict], css_class: str) -> str:
    return "".join(
        f"<tr class='{css_class}'><td class='name'>{_esc(flag['scenario'])}</td>"
        f"<td class='name'>{_esc(flag['metric'])}</td>"
        f"<td>{_esc(flag['from_version'])} → {_esc(flag['to_version'])}</td>"
        f"<td>{_fmt_ci(flag['from_interval'])}</td>"
        f"<td>{_fmt_ci(flag['to_interval'])}</td></tr>"
        for flag in flags
    )


def _trend_scenario_section(series: dict) -> str:
    points = series["points"]
    labels = [str(p["version"]) for p in points]
    bands = []
    for p in points:
        ci = p.get("mean_drop_ci")
        bands.append((ci["low"], ci["high"]) if ci and ci.get("low") is not None else None)
    charts = [
        ("mean accuracy drop (CI band)",
         line_svg(labels, [p["mean_accuracy_drop"] for p in points], bands=bands,
                  title=f"{series['scenario']} mean drop")),
        ("SDC rate",
         line_svg(labels, [p["sdc_rate"] for p in points], colour="#c94f42",
                  title=f"{series['scenario']} SDC rate")),
        ("mean-drop CI width (burn-down)",
         line_svg(labels, [p["ci_width"] for p in points], colour="#7a5ea8",
                  title=f"{series['scenario']} CI width")),
        ("throughput (trials/s, observational)",
         line_svg(labels, [p["throughput_trials_per_second"] for p in points],
                  colour="#4a8a5c", digits=2,
                  title=f"{series['scenario']} throughput")),
    ]
    chart_html = "".join(
        f"<figure><figcaption class='ci'>{_esc(caption)}</figcaption>{svg}</figure>"
        for caption, svg in charts
    )
    flag_html = ""
    if series["regressions"] or series["improvements"]:
        rows = _trend_flag_rows(series["regressions"], "regression") + _trend_flag_rows(
            series["improvements"], "improvement"
        )
        flag_html = (
            "<table><tr><th class='name'>scenario</th><th class='name'>metric</th>"
            "<th>versions</th><th>old interval</th><th>new interval</th></tr>"
            f"{rows}</table>"
        )
    return (
        f"<section class='scenario'><h2>{_esc(series['scenario'])}"
        f" <span class='ci'>({_esc(series['kind'])}, {len(points)} point(s))</span></h2>"
        f"{chart_html}{flag_html}</section>"
    )


def render_trends_html(trends: dict, *, title: str = "repro reliability trends") -> str:
    """Render the trend/regression dict into one self-contained HTML page.

    Consumes only the :func:`repro.observe.trends.build_trends` output, so
    it inherits that function's determinism: re-rendering the same store
    yields the same bytes.
    """
    tiles = [
        ("versions", str(len(trends["versions"]))),
        ("scenarios", str(trends["num_scenarios"])),
        ("regressions", str(trends["num_regressions"])),
        ("confidence", f"{trends['confidence']:.0%}"),
    ]
    tile_html = "".join(
        f"<div class='tile'><div class='value'>{value}</div>"
        f"<div class='label'>{_esc(label)}</div></div>"
        for label, value in tiles
    )
    sections = "".join(_trend_scenario_section(s) for s in trends["scenarios"])
    bench_html = ""
    if trends["benchmarks"]:
        rows = "".join(
            f"<tr><td class='name'>{_esc(series['source'])}</td>"
            f"<td class='name'>{_esc(series['metric'])}</td>"
            + "".join(
                f"<td>{_fmt(p['value'], 4) if isinstance(p['value'], (int, float)) else _esc(p['value'])}"
                f"<div class='ci'>{_esc(p['version'])}</div></td>"
                for p in series["points"]
            )
            + "</tr>"
            for series in trends["benchmarks"]
        )
        bench_html = (
            "<section class='scenario'><h2>Benchmark &amp; profile series</h2>"
            "<table><tr><th class='name'>source</th><th class='name'>metric</th>"
            "<th colspan='99'>values (per version)</th></tr>"
            f"{rows}</table></section>"
        )
    return (
        "<!DOCTYPE html><html lang='en'><head><meta charset='utf-8'>"
        f"<title>{_esc(title)}</title><style>{_CSS}"
        "tr.regression td { background: #fbe6e3; }"
        "tr.improvement td { background: #e8f3ea; }"
        "figure { margin: 0.75rem 0; }"
        "</style></head><body>"
        f"<h1>{_esc(title)}</h1>"
        "<p class='ci'>regression flags use interval-overlap tests "
        "(Wilson / Student-t) — point deltas never flag</p>"
        f"<div class='tiles'>{tile_html}</div>"
        f"{sections}{bench_html}"
        "<footer>generated by <code>repro observe trends</code> "
        "(deterministic: re-rendering the same store yields the same bytes)"
        "</footer></body></html>"
    )


def _scenario_section(entry: dict, confidence: float) -> str:
    summary = entry["summary"]
    rows = [
        ("trials", str(summary["num_trials"])),
        ("baseline accuracy", _fmt(summary["baseline_accuracy"])),
        (
            "mean accuracy drop",
            f"{_fmt(summary['mean_accuracy_drop'])} {_fmt_ci(summary['mean_drop_ci'])}",
        ),
        (
            "mean drop (bootstrap CI)",
            f"{_fmt(summary['mean_accuracy_drop'])} "
            f"{_fmt_ci(summary['mean_drop_ci_bootstrap'])}",
        ),
        (
            "drop p5 / median / p95",
            f"{_fmt(summary['p5_accuracy_drop'])} / {_fmt(summary['p50_accuracy_drop'])} "
            f"/ {_fmt(summary['p95_accuracy_drop'])}",
        ),
        ("max drop", _fmt(summary["max_accuracy_drop"])),
        (
            "SDC rate (Wilson)",
            f"{_fmt(summary['sdc_rate'])} {_fmt_ci(summary['sdc_rate_ci'])}",
        ),
    ]
    adaptive = summary.get("adaptive")
    if adaptive:
        rows.append(
            (
                "adaptive stopping",
                f"{adaptive['trials_evaluated']}/{adaptive['budget']} trials "
                f"({adaptive['rounds_completed']} rounds"
                + (", stopped early)" if adaptive["stopped_early"] else ", ran to budget)"),
            )
        )
    recovery = summary.get("recovery")
    if recovery:
        checkpoint = recovery.get("checkpoint") or {}
        poison = len(recovery.get("poison_shards") or [])
        detail = (
            f"{recovery.get('reclaimed', 0)} lease(s) reclaimed "
            f"({recovery.get('dead_workers', 0)} dead, "
            f"{recovery.get('hung_workers', 0)} hung, "
            f"{recovery.get('worker_errors', 0)} errored)"
        )
        if poison:
            detail += f", {poison} poison shard(s)"
        if any(checkpoint.values()):
            detail += (
                f"; checkpoint healed {checkpoint.get('corrupt_lines', 0)} corrupt / "
                f"{checkpoint.get('duplicate_records', 0)} duplicate line(s)"
            )
        rows.append(("worker recovery", _esc(detail)))
    detail_rows = "".join(
        f"<tr><td class='name'>{_esc(key)}</td><td>{value}</td></tr>" for key, value in rows
    )
    strata_html = ""
    if entry["strata"]:
        strata_rows = "".join(
            f"<tr><td class='name'>MAC {s['stratum'] + 1}</td><td>{s['count']}</td>"
            f"<td>{_fmt(s['mean_drop'])} {_fmt_ci(s['ci'])}</td>"
            f"<td>{_fmt(s['max_drop'])}</td></tr>"
            for s in entry["strata"]
        )
        strata_html = (
            "<h3>Per-stratum sensitivity (most sensitive first)</h3>"
            "<table><tr><th class='name'>stratum</th><th>trials</th>"
            f"<th>mean drop ({confidence:.0%} CI)</th><th>max drop</th></tr>"
            f"{strata_rows}</table>"
        )
    return (
        f"<section class='scenario'><h2>{_esc(entry['scenario'])}</h2>"
        f"{_severity_bar(summary['outcomes'])}"
        f"<table>{detail_rows}</table>"
        f"{boxplot_svg(entry['boxes'], title=entry['scenario'])}"
        f"{strata_html}</section>"
    )


def render_html(report: dict, *, title: str = "repro reliability report") -> str:
    """Render the report dict into one self-contained HTML document."""
    confidence = report["confidence"]
    reliability = report["reliability"]
    sdc_ci = reliability["sdc_rate_ci"]
    tiles = [
        ("scenarios", str(report["num_scenarios"])),
        ("trials", str(reliability["total_trials"])),
        (
            f"SDC rate ({confidence:.0%} CI)",
            f"{_fmt(reliability['sdc_rate'])} {_fmt_ci(sdc_ci)}",
        ),
        ("critical outcomes", str(reliability["outcomes"]["critical"])),
    ]
    if "adaptive_savings" in reliability:
        tiles.append(
            (
                "adaptive savings",
                f"{reliability['adaptive_savings']:.0%} "
                f"({reliability['adaptive_trials_evaluated']}/"
                f"{reliability['adaptive_trial_budget']} trials)",
            )
        )
    if "most_fragile_scenario" in reliability:
        tiles.append(("most fragile", _esc(reliability["most_fragile_scenario"])))
    recovery = reliability.get("recovery")
    if recovery and (
        recovery["reclaimed_leases"] or recovery["poison_shards"]
        or recovery["checkpoint_corrupt_lines"] or recovery["checkpoint_duplicate_records"]
    ):
        tiles.append(
            (
                "leases reclaimed",
                f"{recovery['reclaimed_leases']} "
                f"({recovery['dead_workers']} dead / {recovery['hung_workers']} hung"
                + (f", {recovery['poison_shards']} poison)" if recovery["poison_shards"]
                   else ")"),
            )
        )
    tile_html = "".join(
        f"<div class='tile'><div class='value'>{value}</div>"
        f"<div class='label'>{_esc(label)}</div></div>"
        for label, value in tiles
    )
    sections = "".join(
        _scenario_section(entry, confidence) for entry in report["scenarios"]
    )
    thresholds = report["thresholds"]
    return (
        "<!DOCTYPE html><html lang='en'><head><meta charset='utf-8'>"
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head><body>"
        f"<h1>{_esc(title)}</h1>"
        f"<p class='ci'>source: <code>{_esc(report['source'])}</code> · "
        f"confidence {confidence:.0%} · tolerable drop ≥ "
        f"{thresholds['tolerable_drop']:g} · critical drop ≥ "
        f"{thresholds['critical_drop']:g}</p>"
        f"<div class='tiles'>{tile_html}</div>"
        f"{_legend()}"
        f"{sections}"
        "<footer>generated by <code>repro report</code> (deterministic: no "
        "timestamps; re-rendering the same artifact yields the same bytes)"
        "</footer></body></html>"
    )
