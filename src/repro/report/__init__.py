"""Reliability reporting over campaign and sweep artifacts.

``repro.report`` turns the JSON artifacts the campaign and sweep runners
write (``sweep.json``, or a single campaign's ``--output`` JSON) into two
human-and-machine consumable forms:

* :func:`~repro.report.model.build_report` — a machine-readable report
  dict: per-scenario summaries with confidence intervals, the outcome
  (severity) taxonomy breakdown, accuracy-drop box statistics per fault
  count and a per-stratum sensitivity ranking where the campaign recorded
  strata.
* :func:`~repro.report.html.render_html` — a self-contained HTML
  dashboard (no external assets: inline CSS and inline SVG box plots) of
  the same report, for humans.

The ``repro report`` CLI verb glues both together::

    python -m repro report --input sweep-out/sweep.json \
        --html report.html --json report.json
"""

from repro.report.model import build_report, load_results
from repro.report.html import render_html, render_trends_html

__all__ = ["build_report", "load_results", "render_html", "render_trends_html"]
