"""The machine-readable reliability report: loading and aggregation.

A report is a plain JSON-compatible dict built from one or more
:class:`~repro.core.results.CampaignResult` objects.  The loader accepts
either artifact format the runners produce:

* **sweep** — ``sweep.json`` written by
  :class:`~repro.core.sweep.SweepRunner` (``{"scenarios": [{"scenario":
  id, "result": {...}}, ...]}``);
* **campaign** — a single campaign's JSON (``CampaignResult.to_dict()``
  shape: ``{"baseline_accuracy": ..., "records": [...]}``), e.g. the
  ``repro campaign --output`` file.

Everything statistical is recomputed from the raw trial records through
:mod:`repro.core.stats`, so a report rendered from an old artifact always
reflects the current methodology (and the confidence level / thresholds
the caller asked for, not whatever the campaign happened to log).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.core import stats
from repro.core.analysis import stratum_sensitivity, summarize_by_group
from repro.core.registry import registry_digest
from repro.core.results import CampaignResult

#: Report schema version (bumped on breaking shape changes).
REPORT_VERSION = 1


def load_results(path: Path | str) -> tuple[str, dict[str, CampaignResult]]:
    """Load campaign results from a sweep or campaign JSON artifact.

    Returns ``(kind, results_by_id)`` where ``kind`` is ``"sweep"`` or
    ``"campaign"``; a campaign artifact yields a single entry keyed by its
    strategy name.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{path} is not valid JSON: {exc} (expected a sweep.json or a "
            "campaign JSON; the JSONL checkpoint/merged-record files are not "
            "report inputs)"
        ) from None
    if not isinstance(data, dict):
        raise ValueError(f"{path} holds a JSON {type(data).__name__}, not an object")
    if "scenarios" in data:
        results: dict[str, CampaignResult] = {}
        for entry in data["scenarios"]:
            if "scenario" not in entry or "result" not in entry:
                raise ValueError(
                    f"{path}: sweep scenario entries need 'scenario' and 'result' keys"
                )
            results[entry["scenario"]] = CampaignResult.from_dict(entry["result"])
        if not results:
            raise ValueError(f"{path}: sweep artifact contains no scenarios")
        return "sweep", results
    if "records" in data and "baseline_accuracy" in data:
        result = CampaignResult.from_dict(data)
        return "campaign", {result.strategy or "campaign": result}
    raise ValueError(
        f"{path} is neither a sweep artifact (needs 'scenarios') nor a campaign "
        "JSON (needs 'records' and 'baseline_accuracy')"
    )


def _scenario_entry(
    scenario_id: str,
    result: CampaignResult,
    confidence: float,
    thresholds: stats.OutcomeThresholds,
) -> dict:
    boxes = summarize_by_group(result, group_by="num_faults") if result.records else {}
    return {
        "scenario": scenario_id,
        "summary": result.summary(confidence=confidence, thresholds=thresholds),
        # Box statistics per armed-fault count (string keys: JSON objects
        # cannot carry integer keys, and groups may be non-numeric).
        "boxes": {str(group): dataclasses.asdict(box) for group, box in boxes.items()},
        "strata": stratum_sensitivity(result, confidence),
        # Registry provenance stamped by the producing runner (None for
        # pre-provenance artifacts) — surfaced verbatim so a report always
        # names the (kind, params) that generated its numbers.
        "provenance": result.provenance,
    }


def build_report(
    results_by_id: dict[str, CampaignResult],
    *,
    kind: str = "sweep",
    source: str = "",
    confidence: float = 0.95,
    thresholds: stats.OutcomeThresholds | None = None,
) -> dict:
    """Aggregate campaign results into the machine-readable report dict.

    The report is deliberately timestamp-free: building it twice from the
    same artifact yields byte-identical JSON, so reports can be diffed and
    golden-tested like any other deterministic output.
    """
    thresholds = thresholds or stats.DEFAULT_THRESHOLDS
    scenarios = []
    total_outcomes = {outcome.value: 0 for outcome in stats.OUTCOME_ORDER}
    total_trials = 0
    for scenario_id in sorted(results_by_id):
        result = results_by_id[scenario_id]
        entry = _scenario_entry(scenario_id, result, confidence, thresholds)
        scenarios.append(entry)
        for outcome, count in entry["summary"]["outcomes"].items():
            total_outcomes[outcome] += count
        total_trials += entry["summary"]["num_trials"]

    corrupting = stats.sdc_count(total_outcomes)
    reliability = {
        "total_trials": total_trials,
        "outcomes": total_outcomes,
        "sdc_rate": (corrupting / total_trials) if total_trials else 0.0,
        "sdc_rate_ci": (
            stats.wilson_interval(corrupting, total_trials, confidence).to_dict()
            if total_trials
            else None
        ),
        "sdc_rate_ci_exact": (
            stats.clopper_pearson_interval(corrupting, total_trials, confidence).to_dict()
            if total_trials
            else None
        ),
    }
    with_trials = [s for s in scenarios if s["summary"]["num_trials"]]
    if with_trials:
        worst = max(with_trials, key=lambda s: s["summary"]["mean_accuracy_drop"])
        reliability["most_fragile_scenario"] = worst["scenario"]
        reliability["most_fragile_mean_drop"] = worst["summary"]["mean_accuracy_drop"]
        adaptive = [s for s in scenarios if s["summary"].get("adaptive")]
        if adaptive:
            budget = sum(s["summary"]["adaptive"]["budget"] for s in adaptive)
            spent = sum(s["summary"]["adaptive"]["trials_evaluated"] for s in adaptive)
            reliability["adaptive_trials_evaluated"] = spent
            reliability["adaptive_trial_budget"] = budget
            reliability["adaptive_savings"] = (1.0 - spent / budget) if budget else 0.0
    recoveries = [s["summary"]["recovery"] for s in scenarios if s["summary"].get("recovery")]
    if recoveries:
        # Supervisor provenance: how much harness failure the campaigns
        # absorbed without changing a single record.
        reliability["recovery"] = {
            "scenarios_supervised": len(recoveries),
            "lease_attempts": sum(r.get("attempts", 0) for r in recoveries),
            "reclaimed_leases": sum(r.get("reclaimed", 0) for r in recoveries),
            "dead_workers": sum(r.get("dead_workers", 0) for r in recoveries),
            "hung_workers": sum(r.get("hung_workers", 0) for r in recoveries),
            "worker_errors": sum(r.get("worker_errors", 0) for r in recoveries),
            "poison_shards": sum(len(r.get("poison_shards") or []) for r in recoveries),
            "checkpoint_corrupt_lines": sum(
                (r.get("checkpoint") or {}).get("corrupt_lines", 0) for r in recoveries
            ),
            "checkpoint_duplicate_records": sum(
                (r.get("checkpoint") or {}).get("duplicate_records", 0) for r in recoveries
            ),
        }
    return {
        "version": REPORT_VERSION,
        "kind": kind,
        "source": str(source),
        "confidence": confidence,
        "thresholds": thresholds.to_dict(),
        # Digest of the registries live at *report* time; each scenario's
        # own stamp (under "provenance") records what was live at run time.
        "registry_digest": registry_digest(),
        "num_scenarios": len(scenarios),
        "scenarios": scenarios,
        "reliability": reliability,
    }
