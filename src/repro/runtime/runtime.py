"""The host-side runtime driving the emulated accelerator.

The paper's platform runs a user-space runtime (derived from the Tengine
NVDLA runtime) on the ARM cores: it loads the compiled network, quantises
input images, programs the fault-injection registers over AXI4-Lite, submits
inference jobs and reads back the classification results.  :class:`Runtime`
is the emulator-side equivalent and is the object the fault-injection
campaigns in :mod:`repro.core` talk to.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.accelerator.accelerator import NVDLAAccelerator
from repro.accelerator.timing import TimingModel, TimingReport
from repro.compiler.loadable import Loadable
from repro.faults.injector import InjectionConfig
from repro.utils.logging import get_logger

logger = get_logger(__name__)


@dataclass
class InferenceResult:
    """Result of one (batched) inference job."""

    logits: np.ndarray
    predictions: np.ndarray
    injection: InjectionConfig
    wall_seconds: float
    emulated_latency_s: float | None = None

    @property
    def batch_size(self) -> int:
        return int(self.logits.shape[0])


@dataclass
class RuntimeStatistics:
    """Counters accumulated over the runtime's lifetime.

    ``per_config_images`` aggregates by fault-model *kind* (model labels +
    armed-site count) rather than by full configuration description: a
    million-trial campaign arms a million distinct configurations, and one
    dict entry each would grow without bound.  ``max_tracked_configs`` is a
    backstop for strategies that still produce many kinds (e.g. sweeping
    every constant value) — once reached, new kinds land in ``"(other)"``.
    """

    inferences: int = 0
    images: int = 0
    wall_seconds: float = 0.0
    fi_reconfigurations: int = 0
    per_config_images: dict[str, int] = field(default_factory=dict)
    max_tracked_configs: int = 256

    @staticmethod
    def _config_key(injection: InjectionConfig) -> str:
        if not injection.enabled:
            return "fault-free"
        labels = sorted({model.label() for model in injection.faults.values()})
        return f"{'+'.join(labels)} x{len(injection)}"

    def record(self, result: InferenceResult) -> None:
        self.inferences += 1
        self.images += result.batch_size
        self.wall_seconds += result.wall_seconds
        self._count_config(result.injection, result.batch_size)

    def record_fused(
        self, injections: list[InjectionConfig], batch_size: int, wall_seconds: float
    ) -> None:
        """Account one fused multi-trial pass (one inference per trial)."""
        self.inferences += len(injections)
        self.images += len(injections) * batch_size
        self.wall_seconds += wall_seconds
        for injection in injections:
            self._count_config(injection, batch_size)

    def _count_config(self, injection: InjectionConfig, batch_size: int) -> None:
        key = self._config_key(injection)
        if key not in self.per_config_images and len(self.per_config_images) >= self.max_tracked_configs:
            key = "(other)"
        self.per_config_images[key] = self.per_config_images.get(key, 0) + batch_size

    @property
    def images_per_second(self) -> float:
        if self.wall_seconds == 0:
            return 0.0
        return self.images / self.wall_seconds


class Runtime:
    """Loads a loadable onto an accelerator and runs inference jobs."""

    def __init__(
        self,
        accelerator: NVDLAAccelerator | None = None,
        timing_model: TimingModel | None = None,
    ):
        self.accelerator = accelerator or NVDLAAccelerator()
        self.timing_model = timing_model or TimingModel(geometry=self.accelerator.geometry)
        self.loadable: Loadable | None = None
        self.stats = RuntimeStatistics()
        self._timing_cache: TimingReport | None = None

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def load(self, loadable: Loadable) -> None:
        """Load a compiled network (and plan its memory surfaces)."""
        loadable.plan_memory()
        self.loadable = loadable
        self._timing_cache = None
        logger.info("loaded %s: %d ops, %d MACs", loadable.name, len(loadable), loadable.total_macs())

    def _require_loadable(self) -> Loadable:
        if self.loadable is None:
            raise RuntimeError("no loadable loaded; call Runtime.load() first")
        return self.loadable

    # ------------------------------------------------------------------
    # Fault injection control
    # ------------------------------------------------------------------
    def configure_faults(self, config: InjectionConfig | None) -> None:
        """Program a fault-injection configuration (None disarms)."""
        self.accelerator.set_injection_config(config)
        self.stats.fi_reconfigurations += 1

    def clear_faults(self) -> None:
        self.configure_faults(InjectionConfig.fault_free())

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def infer(self, images: np.ndarray, chunk_key: tuple | None = None) -> InferenceResult:
        """Run one inference job on a batch of float images.

        ``chunk_key`` ties the batch to its position in an evaluation loop
        so the accelerator's clean-activation tape can record (baseline) or
        replay (trials) the chunk's clean forward; ad-hoc inferences leave
        it ``None`` and execute in full.
        """
        loadable = self._require_loadable()
        start = time.perf_counter()
        logits = self.accelerator.execute(loadable, images, chunk_key=chunk_key)
        wall = time.perf_counter() - start
        result = InferenceResult(
            logits=np.asarray(logits),
            predictions=np.asarray(logits).argmax(axis=-1),
            injection=self.accelerator.injection_config,
            wall_seconds=wall,
            emulated_latency_s=self.emulated_latency_seconds() * len(images),
        )
        self.stats.record(result)
        return result

    def accuracy(self, images: np.ndarray, labels: np.ndarray, batch_size: int = 64) -> float:
        """Top-1 accuracy over a dataset under the current fault configuration."""
        self._require_loadable()
        correct = 0
        total = len(labels)
        for start in range(0, total, batch_size):
            batch = images[start : start + batch_size]
            result = self.infer(batch, chunk_key=(start, len(batch)))
            correct += int((result.predictions == labels[start : start + batch_size]).sum())
        return correct / max(total, 1)

    def accuracy_multi(
        self,
        configs: list[InjectionConfig],
        images: np.ndarray,
        labels: np.ndarray,
        batch_size: int = 64,
    ) -> list[float]:
        """Top-1 accuracy of several fault configurations in fused passes.

        Every batch chunk is evaluated for all configurations at once
        through :meth:`NVDLAAccelerator.execute_fused
        <repro.accelerator.accelerator.NVDLAAccelerator.execute_fused>`;
        entry ``g`` of the returned list is bit-identical to arming
        ``configs[g]`` and calling :meth:`accuracy`.
        """
        loadable = self._require_loadable()
        groups = len(configs)
        total = len(labels)
        correct = np.zeros(groups, dtype=np.int64)
        for start in range(0, total, batch_size):
            batch = images[start : start + batch_size]
            chunk_labels = np.asarray(labels[start : start + batch_size])
            t0 = time.perf_counter()
            logits = self.accelerator.execute_fused(
                loadable, batch, configs, chunk_key=(start, len(batch))
            )
            wall = time.perf_counter() - t0
            predictions = np.asarray(logits).argmax(axis=-1).reshape(groups, len(batch))
            correct += (predictions == chunk_labels[None, :]).sum(axis=1)
            self.stats.record_fused(configs, len(batch), wall)
        self.stats.fi_reconfigurations += groups
        return [int(c) / max(total, 1) for c in correct]

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def emulated_latency_seconds(self) -> float:
        """Per-image latency of the emulated accelerator (cycle model)."""
        if self._timing_cache is None:
            self._timing_cache = self.timing_model.time_model(self._require_loadable().model)
        return self._timing_cache.latency_seconds

    def emulated_inferences_per_second(self) -> float:
        return 1.0 / self.emulated_latency_seconds()
