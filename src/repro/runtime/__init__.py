"""Software stack analogue: runtime, CPU reference backend, latency models.

In the paper, a Tengine-based runtime on the on-chip ARM cores loads the
execution plan, feeds images, controls the fault injection registers and
collects results; Table I additionally compares the accelerator's latency
against running the same int8 network on the ARM Cortex-A53 and an AMD
Ryzen 7 7700.  This subpackage provides the equivalents:

* :class:`~repro.runtime.runtime.Runtime` — the host-side driver of the
  emulated accelerator,
* :mod:`repro.runtime.cpu_backend` — a bit-exact int8 software execution of
  the quantised model (the "CPU rows" of Table I, and the golden model the
  accelerator emulator is validated against),
* :mod:`repro.runtime.perf_model` — analytic latency models for the CPU and
  accelerator operating points reported in Table I.
"""

from repro.runtime.cpu_backend import CPUBackend
from repro.runtime.perf_model import (
    CPUDevice,
    DevicePerformanceModel,
    PerformanceEstimate,
    ARM_CORTEX_A53,
    AMD_RYZEN_7700,
    table1_performance_rows,
)
from repro.runtime.runtime import Runtime, InferenceResult

__all__ = [
    "CPUBackend",
    "Runtime",
    "InferenceResult",
    "CPUDevice",
    "DevicePerformanceModel",
    "PerformanceEstimate",
    "ARM_CORTEX_A53",
    "AMD_RYZEN_7700",
    "table1_performance_rows",
]
