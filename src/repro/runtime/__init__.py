"""Software stack analogue: runtime, CPU reference backend, latency models.

In the paper, a Tengine-based runtime on the on-chip ARM cores loads the
execution plan, feeds images, controls the fault injection registers and
collects results; Table I additionally compares the accelerator's latency
against running the same int8 network on the ARM Cortex-A53 and an AMD
Ryzen 7 7700.  This subpackage provides the equivalents:

* :class:`~repro.runtime.runtime.Runtime` — the host-side driver of the
  emulated accelerator,
* :mod:`repro.runtime.cpu_backend` — a bit-exact int8 software execution of
  the quantised model (the "CPU rows" of Table I, and the golden model the
  accelerator emulator is validated against),
* :mod:`repro.runtime.gemm` — the exact BLAS-backed integer GEMM core shared
  by every conv/FC call site in the repository,
* :mod:`repro.runtime.perf_model` — analytic latency models for the CPU and
  accelerator operating points reported in Table I.

The public names are resolved lazily (PEP 562): :mod:`repro.runtime.gemm`
is a dependency-free leaf imported by :mod:`repro.accelerator.engine`, and
an eager ``from repro.runtime.runtime import Runtime`` here would close an
import cycle through :mod:`repro.accelerator.accelerator`.
"""

from __future__ import annotations

import importlib

_EXPORTS = {
    "CPUBackend": ("repro.runtime.cpu_backend", "CPUBackend"),
    "Runtime": ("repro.runtime.runtime", "Runtime"),
    "InferenceResult": ("repro.runtime.runtime", "InferenceResult"),
    "CPUDevice": ("repro.runtime.perf_model", "CPUDevice"),
    "DevicePerformanceModel": ("repro.runtime.perf_model", "DevicePerformanceModel"),
    "PerformanceEstimate": ("repro.runtime.perf_model", "PerformanceEstimate"),
    "ARM_CORTEX_A53": ("repro.runtime.perf_model", "ARM_CORTEX_A53"),
    "AMD_RYZEN_7700": ("repro.runtime.perf_model", "AMD_RYZEN_7700"),
    "table1_performance_rows": ("repro.runtime.perf_model", "table1_performance_rows"),
    "exact_matmul": ("repro.runtime.gemm", "exact_matmul"),
    "gemm_backend": ("repro.runtime.gemm", "gemm_backend"),
    "set_gemm_backend": ("repro.runtime.gemm", "set_gemm_backend"),
    "get_gemm_backend": ("repro.runtime.gemm", "get_gemm_backend"),
    "GEMM_STATS": ("repro.runtime.gemm", "GEMM_STATS"),
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
