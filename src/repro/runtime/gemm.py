"""Exact BLAS-backed integer GEMM: the shared fast-math core of the repo.

Every conv/FC execution path in this repository reduces to the contraction

    acc[..., o, p] = sum_r  w[..., o, r] * x[..., r, p]

over *integer* operands (int8 activations and weights, int64 reference
buffers).  numpy cannot route integer ``matmul``/``einsum`` through BLAS, so
the seed implementation paid for a slow generic int64 contraction loop on
every layer of every fault-injection trial.

This module exploits a classical exactness argument to run the contraction
on the float BLAS kernels **without losing a single bit**:

* every operand, every product and every partial sum along the way is an
  integer;
* IEEE-754 binary64 represents all integers with magnitude < 2**53 exactly,
  and binary32 all integers with magnitude < 2**24;
* the magnitude of any partial sum of the contraction is bounded by
  ``depth * max|w| * max|x|`` (``depth`` = accumulation length), no matter
  in which order BLAS blocks and reorders the additions;
* therefore, when that bound is below the float type's exact-integer range,
  the float GEMM computes the mathematically exact result and the cast back
  to int64 is lossless.

For int8 x int8 operands the products are at most ``128 * 128 = 2**14``, so
float32 SGEMM is exact up to an accumulation depth of 1023 (``IC * K**2``;
most layers of the case-study model) and float64 DGEMM up to a depth of
2**39 — the deepest 3x3 ResNet-18 layers (depth up to 4608 at full width)
land there, still far inside the exact range.  When the bound cannot be
certified the implementation transparently falls back to the original int64
contraction, so :func:`exact_matmul` is *always* bit-exact.

The backend can be forced (for benchmarking and differential testing) with
:func:`set_gemm_backend`, the :func:`gemm_backend` context manager or the
``REPRO_GEMM_BACKEND`` environment variable (``auto`` / ``float32`` /
``float64`` / ``int64``).  Forced float backends still respect the exactness
bound: a request that cannot be certified falls back to a wider type rather
than ever returning a wrong result.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

#: Largest magnitude for which every integer is exactly representable in
#: IEEE-754 binary32 (2**24) / binary64 (2**53).
FLOAT32_EXACT_BOUND = 1 << 24
FLOAT64_EXACT_BOUND = 1 << 53

#: Valid backend names accepted by :func:`set_gemm_backend`.
BACKENDS = ("auto", "float32", "float64", "int64")

#: Worst-case |value| per integer dtype (note: |int8 min| = 128, not 127).
_DTYPE_BOUNDS = {
    np.dtype(np.bool_): 1,
    np.dtype(np.int8): 1 << 7,
    np.dtype(np.uint8): (1 << 8) - 1,
    np.dtype(np.int16): 1 << 15,
    np.dtype(np.uint16): (1 << 16) - 1,
}


@dataclass
class GemmStats:
    """Counters of which kernel served each :func:`exact_matmul` call."""

    float32_calls: int = 0
    float64_calls: int = 0
    int64_calls: int = 0
    #: ``auto``/float requests demoted to a wider path by the exactness bound.
    bound_fallbacks: int = 0

    @property
    def total_calls(self) -> int:
        return self.float32_calls + self.float64_calls + self.int64_calls

    def reset(self) -> None:
        self.float32_calls = 0
        self.float64_calls = 0
        self.int64_calls = 0
        self.bound_fallbacks = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "float32_calls": self.float32_calls,
            "float64_calls": self.float64_calls,
            "int64_calls": self.int64_calls,
            "bound_fallbacks": self.bound_fallbacks,
        }


#: Process-global counters (each campaign worker process has its own copy).
GEMM_STATS = GemmStats()

_backend: str = os.environ.get("REPRO_GEMM_BACKEND", "auto")
if _backend not in BACKENDS:  # pragma: no cover - env misconfiguration guard
    raise ValueError(
        f"REPRO_GEMM_BACKEND={_backend!r} is not one of {', '.join(BACKENDS)}"
    )


def get_gemm_backend() -> str:
    """The currently selected backend name."""
    return _backend


def set_gemm_backend(name: str) -> None:
    """Select the GEMM backend (``auto`` picks the fastest exact kernel)."""
    global _backend
    if name not in BACKENDS:
        raise ValueError(f"unknown GEMM backend {name!r}; choose from {', '.join(BACKENDS)}")
    _backend = name


@contextmanager
def gemm_backend(name: str):
    """Temporarily force a GEMM backend (used by benchmarks and tests)."""
    previous = get_gemm_backend()
    set_gemm_backend(name)
    try:
        yield
    finally:
        set_gemm_backend(previous)


def operand_bound(array: np.ndarray) -> int:
    """An upper bound on ``max|array|``, cheap for narrow integer dtypes.

    For int8/int16-family operands the dtype's representable range is used
    (no data pass); for wider integers the actual extrema are inspected so
    that e.g. int64 buffers holding small values still qualify for BLAS.
    """
    dtype = array.dtype
    bound = _DTYPE_BOUNDS.get(dtype)
    if bound is not None:
        return bound
    if not np.issubdtype(dtype, np.integer):
        raise TypeError(f"exact integer GEMM needs integer operands, got {dtype}")
    if array.size == 0:
        return 0
    # abs() would overflow on int64 min; bound via the signed extrema instead.
    return max(abs(int(array.min())), abs(int(array.max())))


def accumulation_bound(a: np.ndarray, b: np.ndarray) -> int:
    """Worst-case |partial sum| of ``a @ b`` as an arbitrary-precision int."""
    depth = a.shape[-1]
    return depth * operand_bound(a) * operand_bound(b)


def _int64_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The seed implementation's exact (slow) int64 contraction."""
    a64 = a.astype(np.int64, copy=False)
    b64 = b.astype(np.int64, copy=False)
    if a64.ndim == 2 and b64.ndim == 3:
        # The layout used by every conv call site; einsum matches the
        # pre-BLAS code path instruction for instruction.
        return np.einsum("or,nrp->nop", a64, b64, optimize=True)
    return np.matmul(a64, b64)


def _resolve_backend(bound: int) -> str:
    """Map the requested float/auto backend + exactness bound to a safe kernel.

    (A forced ``int64`` backend short-circuits before the bound is computed.)
    """
    requested = _backend
    if bound < FLOAT32_EXACT_BOUND and requested in ("auto", "float32"):
        return "float32"
    if bound < FLOAT64_EXACT_BOUND:
        if requested == "float32":
            GEMM_STATS.bound_fallbacks += 1
        return "float64"
    GEMM_STATS.bound_fallbacks += 1
    return "int64"


def exact_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bit-exact integer matmul of ``a @ b`` (numpy broadcasting rules).

    Both operands must have integer (or bool) dtype.  The result is always
    int64 and always equals the infinite-precision contraction saturated
    nowhere — when the exactness bound certifies a float kernel the BLAS
    path is taken, otherwise the original int64 contraction runs.

    Typical call sites::

        exact_matmul(w_mat, cols)      # (O, R) x (N, R, P) -> (N, O, P)
        exact_matmul(x, weight.T)      # (N, F) x (F, O)    -> (N, O)
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape[-1] != b.shape[-2 if b.ndim > 1 else -1]:
        raise ValueError(
            f"matmul contraction mismatch: {a.shape} x {b.shape}"
        )
    if _backend == "int64":
        # Forced reference path: skip the bound (wide dtypes would pay a
        # full min/max scan only to have the result discarded).
        GEMM_STATS.int64_calls += 1
        return _int64_matmul(a, b)
    kernel = _resolve_backend(accumulation_bound(a, b))
    if kernel == "float32":
        GEMM_STATS.float32_calls += 1
        # All products and partial sums are integers < 2**24, so SGEMM is
        # exact and the int64 cast truncates nothing.
        return np.matmul(a.astype(np.float32), b.astype(np.float32)).astype(np.int64)
    if kernel == "float64":
        GEMM_STATS.float64_calls += 1
        return np.matmul(a.astype(np.float64), b.astype(np.float64)).astype(np.int64)
    GEMM_STATS.int64_calls += 1
    return _int64_matmul(a, b)
