"""Analytic latency models for the devices of Table I.

None of the paper's hardware (Zynq ARM Cortex-A53, AMD Ryzen 7 7700, the
NVDLA fabric) is available here, so Table I's performance column is
reproduced with analytic roofline-style models:

* CPU devices execute the network's multiply-accumulates at a sustained
  int8 MAC/cycle rate, with an Amdahl-style parallel fraction governing the
  multi-threaded rows and a fixed framework overhead per inference.
* The accelerator row comes from the cycle model in
  :mod:`repro.accelerator.timing` (atomic-op counts of the actual execution
  plan at 187.5 MHz).

The device constants are calibrated against the paper's measurements for a
workload of the paper's size (documented per constant), so the *ratios* —
NVDLA ≈ 4.9x faster than single-thread ARM, ≈ 2.5x faster than single-thread
Ryzen, FI adds no latency — are reproduced; EXPERIMENTS.md records both the
paper's absolute numbers and the model's outputs for our workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.timing import TimingModel, TimingReport
from repro.compiler.loadable import Loadable


@dataclass(frozen=True)
class CPUDevice:
    """Sustained-throughput description of one CPU operating point.

    Attributes
    ----------
    name:
        Device label used in reports.
    frequency_hz:
        Core clock.
    macs_per_cycle:
        Sustained int8 multiply-accumulates per cycle and per core reached by
        the (Tengine-style) int8 GEMM kernels.  Calibrated so a ~55 M-MAC
        ResNet-18 matches the paper's single-thread latency on this device.
    parallel_fraction:
        Fraction of the inference that scales with the number of threads
        (Amdahl); calibrated from the paper's 1-thread vs 4-thread rows.
    framework_overhead_s:
        Fixed per-inference overhead (graph traversal, tensor bookkeeping).
    """

    name: str
    frequency_hz: float
    macs_per_cycle: float
    parallel_fraction: float
    framework_overhead_s: float = 2.0e-4


#: ARM Cortex-A53 on the Zynq UltraScale+ PS, 1.3 GHz.
#: Calibration: paper reports 22.68 ms (1 thread) / 14.12 ms (4 threads).
ARM_CORTEX_A53 = CPUDevice(
    name="ARM Cortex-A53 (Zynq)",
    frequency_hz=1.3e9,
    macs_per_cycle=1.9,
    parallel_fraction=0.50,
)

#: AMD Ryzen 7 7700 desktop CPU, int8 kernels, 3.8 GHz base clock.
#: Calibration: paper reports 11.57 ms (1 thread) / 5.67 ms (4 threads).
AMD_RYZEN_7700 = CPUDevice(
    name="AMD Ryzen 7 7700 (int8)",
    frequency_hz=3.8e9,
    macs_per_cycle=1.3,
    parallel_fraction=0.68,
)


@dataclass(frozen=True)
class PerformanceEstimate:
    """Latency estimate of one device/configuration row."""

    device: str
    threads: int | None
    frequency_hz: float
    inference_seconds: float
    luts: int | None = None
    ffs: int | None = None

    @property
    def inference_ms(self) -> float:
        return self.inference_seconds * 1e3

    @property
    def inferences_per_second(self) -> float:
        return 1.0 / self.inference_seconds


class DevicePerformanceModel:
    """Latency model of one CPU device for a given workload."""

    def __init__(self, device: CPUDevice):
        self.device = device

    def inference_seconds(self, total_macs: int, threads: int = 1) -> float:
        """Estimated per-inference latency for ``threads`` worker threads."""
        if threads < 1:
            raise ValueError("threads must be >= 1")
        d = self.device
        single_thread = total_macs / (d.macs_per_cycle * d.frequency_hz)
        serial = (1.0 - d.parallel_fraction) * single_thread
        parallel = d.parallel_fraction * single_thread / threads
        return serial + parallel + d.framework_overhead_s

    def estimate(self, total_macs: int, threads: int = 1) -> PerformanceEstimate:
        return PerformanceEstimate(
            device=self.device.name,
            threads=threads,
            frequency_hz=self.device.frequency_hz,
            inference_seconds=self.inference_seconds(total_macs, threads),
        )


def accelerator_estimate(
    loadable: Loadable,
    timing_model: TimingModel | None = None,
    label: str = "NVDLA",
    luts: int | None = None,
    ffs: int | None = None,
) -> PerformanceEstimate:
    """Latency estimate of the accelerator from its cycle model."""
    timing_model = timing_model or TimingModel(geometry=loadable.geometry)
    report: TimingReport = timing_model.time_model(loadable.model)
    return PerformanceEstimate(
        device=label,
        threads=None,
        frequency_hz=timing_model.clock_hz,
        inference_seconds=report.latency_seconds,
        luts=luts,
        ffs=ffs,
    )


def table1_performance_rows(loadable: Loadable) -> list[PerformanceEstimate]:
    """All rows of Table I for the compiled workload.

    CPU rows use the analytic device models on the workload's true MAC
    count; accelerator rows use the cycle model and the resource model, with
    the fault-injection variants sharing the same latency (the injectors are
    combinational).
    """
    from repro.accelerator.resources import FIVariant, ResourceModel

    total_macs = loadable.total_macs()
    rows: list[PerformanceEstimate] = []
    for device in (ARM_CORTEX_A53, AMD_RYZEN_7700):
        model = DevicePerformanceModel(device)
        for threads in (1, 4):
            rows.append(model.estimate(total_macs, threads))

    resources = ResourceModel(geometry=loadable.geometry)
    base = resources.estimate(FIVariant.NONE)
    const = resources.estimate(FIVariant.CONSTANT)
    var = resources.estimate(FIVariant.VARIABLE)
    nvdla = accelerator_estimate(loadable, label="NVDLA", luts=base.luts, ffs=base.ffs)
    rows.append(nvdla)
    rows.append(
        PerformanceEstimate(
            device="NVDLA + FI (constant error)",
            threads=None,
            frequency_hz=nvdla.frequency_hz,
            inference_seconds=nvdla.inference_seconds,
            luts=const.luts,
            ffs=const.ffs,
        )
    )
    rows.append(
        PerformanceEstimate(
            device="NVDLA + FI (variable error)",
            threads=None,
            frequency_hz=nvdla.frequency_hz,
            inference_seconds=nvdla.inference_seconds,
            luts=var.luts,
            ffs=var.ffs,
        )
    )
    return rows
