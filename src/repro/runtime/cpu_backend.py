"""Bit-exact int8 execution of a quantised model on the CPU.

This backend plays two roles:

1. It is the software execution path of Table I — the same int8 network
   running through Tengine on the ARM cores or a desktop CPU instead of on
   the accelerator.
2. It is the *golden model* for the accelerator emulator: it is written
   independently of the MAC-array tiling (plain matrix multiplication per
   layer), so agreement between the two implementations on every layer and
   every image is strong evidence that the lane-level engine is correct.
"""

from __future__ import annotations

import time

import numpy as np

from repro.nn.functional import conv_output_size, im2col
from repro.runtime.gemm import exact_matmul
from repro.quant.qlayers import (
    QAdd,
    QConv,
    QGlobalAvgPool,
    QInput,
    QLinear,
    QMaxPool,
    QuantizedModel,
)
from repro.quant.qscheme import INT8_MAX, INT8_MIN, requantize
from repro.accelerator.pdp import max_pool_int8


class CPUBackend:
    """Executes a :class:`QuantizedModel` with plain numpy integer arithmetic."""

    def __init__(self, num_threads: int = 1):
        #: Modelled thread count; numpy execution is unaffected, but the
        #: value is recorded so performance reports can label results.
        self.num_threads = num_threads
        #: Wall-clock seconds of the last :meth:`run` call.
        self.last_run_seconds = 0.0

    # ------------------------------------------------------------------
    # Layer implementations
    # ------------------------------------------------------------------
    @staticmethod
    def _conv(x_q: np.ndarray, node: QConv) -> np.ndarray:
        n, ic, h, w = x_q.shape
        k = node.kernel_size
        out_h = conv_output_size(h, k, node.stride, node.padding)
        out_w = conv_output_size(w, k, node.stride, node.padding)
        # int8 patches straight into the exact BLAS-backed GEMM core; the
        # result is bit-identical to the historical int64 einsum.
        cols = im2col(x_q, k, node.stride, node.padding)
        w_mat = node.weight.reshape(node.out_channels, -1)
        acc = exact_matmul(w_mat, cols)
        acc = acc + node.bias.astype(np.int64)[None, :, None]
        acc = acc.reshape(n, node.out_channels, out_h, out_w)
        return requantize(acc, node.requant, channel_axis=1, relu=node.relu)

    @staticmethod
    def _linear(x_q: np.ndarray, node: QLinear) -> np.ndarray:
        acc = exact_matmul(x_q, node.weight.T)
        acc = acc + node.bias.astype(np.int64)[None, :]
        if node.requant is None:
            return acc
        return requantize(acc, node.requant, channel_axis=1, relu=node.relu)

    @staticmethod
    def _add(a: np.ndarray, b: np.ndarray, node: QAdd) -> np.ndarray:
        a_scaled = requantize(
            np.asarray(a, dtype=np.int64), node.requant_a, channel_axis=1, saturate_to_int8=False
        )
        b_scaled = requantize(
            np.asarray(b, dtype=np.int64), node.requant_b, channel_axis=1, saturate_to_int8=False
        )
        total = a_scaled + b_scaled
        if node.relu:
            total = np.maximum(total, 0)
        return np.clip(total, INT8_MIN, INT8_MAX).astype(np.int8)

    @staticmethod
    def _global_avg(x: np.ndarray, node: QGlobalAvgPool) -> np.ndarray:
        acc = np.asarray(x, dtype=np.int64).sum(axis=(2, 3))
        return requantize(acc, node.requant, channel_axis=1, relu=False)

    # ------------------------------------------------------------------
    # Whole-model execution
    # ------------------------------------------------------------------
    def run(self, model: QuantizedModel, images: np.ndarray) -> np.ndarray:
        """Run inference on float images; returns raw classifier logits."""
        start = time.perf_counter()
        activations: dict[str, np.ndarray] = {}
        for node in model.nodes:
            if isinstance(node, QInput):
                activations[node.name] = node.quantize(images)
                continue
            inputs = [activations[src] for src in node.inputs]
            if isinstance(node, QConv):
                activations[node.name] = self._conv(inputs[0], node)
            elif isinstance(node, QLinear):
                activations[node.name] = self._linear(inputs[0], node)
            elif isinstance(node, QAdd):
                activations[node.name] = self._add(inputs[0], inputs[1], node)
            elif isinstance(node, QMaxPool):
                activations[node.name] = max_pool_int8(inputs[0], node.kernel, node.stride, node.padding)
            elif isinstance(node, QGlobalAvgPool):
                activations[node.name] = self._global_avg(inputs[0], node)
            else:
                raise TypeError(f"unsupported node type {type(node).__name__}")
        self.last_run_seconds = time.perf_counter() - start
        return activations[model.output_name]

    def classify(self, model: QuantizedModel, images: np.ndarray) -> np.ndarray:
        return np.asarray(self.run(model, images)).argmax(axis=-1)

    def accuracy(self, model: QuantizedModel, images: np.ndarray, labels: np.ndarray) -> float:
        predictions = self.classify(model, images)
        return float((predictions == np.asarray(labels)).mean())
