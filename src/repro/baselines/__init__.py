"""Baseline fault-injection approaches the paper compares against.

* :mod:`repro.baselines.software_fi` — graph-level software fault injection
  in the style of PyTorchFI/FIdelity: faults are applied to layer *outputs*
  in the CNN execution graph rather than to individual multipliers, which is
  cheap but architecture-blind (the "easiest but least reliable" analysis in
  the paper's introduction).
* :mod:`repro.baselines.saffira` — a deliberately faithful (and therefore
  slow) systolic-array software simulator in the spirit of SAFFIRA, used for
  the conclusion's throughput comparison (217 emulated inferences/s vs 5.8
  software simulations/s covering only two layers).
"""

from repro.baselines.software_fi import (
    GraphFaultSpec,
    SoftwareFaultInjector,
)
from repro.baselines.saffira import SystolicArraySimulator, SimulationReport

__all__ = [
    "SoftwareFaultInjector",
    "GraphFaultSpec",
    "SystolicArraySimulator",
    "SimulationReport",
]
