"""Graph-level software fault injection (PyTorchFI / FIdelity style).

The paper's introduction describes the common software approach to fault
tolerance analysis: inject faults directly into the CNN execution graph —
for example "stuck-at-0 faults at the outputs of multiplication operations"
or by disconnecting components — without modelling which hardware multiplier
actually computes which product.  This module implements that approach on
the quantised model so the examples and benchmarks can compare it against
the architecture-accurate emulator on both fidelity and speed:

* it is faster per analysed configuration (no lane bookkeeping), but
* a "multiplier fault" can only be approximated by corrupting the output
  channels that the faulty MAC unit would produce, which ignores how partial
  products recombine inside the accumulation — precisely the imprecision the
  paper's emulator removes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.sites import FaultSite
from repro.quant.qlayers import (
    QAdd,
    QConv,
    QGlobalAvgPool,
    QInput,
    QLinear,
    QMaxPool,
    QuantizedModel,
)
from repro.quant.qscheme import INT8_MAX, INT8_MIN
from repro.runtime.cpu_backend import CPUBackend
from repro.accelerator.pdp import max_pool_int8


@dataclass(frozen=True)
class GraphFaultSpec:
    """One graph-level fault: corrupt activations of selected output channels.

    Attributes
    ----------
    layer:
        Name of the quantised conv/FC node whose output is corrupted, or
        ``"*"`` for every conv/FC node.
    channels:
        Output channels to corrupt (empty tuple = all channels).
    value:
        int8 value written into the corrupted activations.
    fraction:
        Fraction of the selected activations that are corrupted (1.0 = all).
    """

    layer: str = "*"
    channels: tuple[int, ...] = ()
    value: int = 0
    fraction: float = 1.0

    def __post_init__(self) -> None:
        if not INT8_MIN <= self.value <= INT8_MAX:
            raise ValueError(f"injected value {self.value} is not an int8 activation")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")


class SoftwareFaultInjector:
    """Runs a quantised model with graph-level output corruption."""

    def __init__(self, model: QuantizedModel, seed: int = 0):
        self.model = model
        self.backend = CPUBackend()
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Fault spec helpers
    # ------------------------------------------------------------------
    def specs_for_hardware_site(
        self, site: FaultSite, value: int = 0, atomic_k: int = 8
    ) -> list[GraphFaultSpec]:
        """Approximate a hardware multiplier fault at graph level.

        The best a graph-level injector can do is corrupt the output channels
        that the faulty MAC unit produces (every ``atomic_k``-th channel),
        because the per-product effect inside the accumulation is invisible
        at this abstraction.  The fraction of affected activations is set to
        ``1 / atomic_c`` to mimic that only one of the MAC's lanes is faulty.
        """
        return [
            GraphFaultSpec(
                layer="*",
                channels=(),
                value=value,
                fraction=1.0 / atomic_k,
            )
        ]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _corrupt(self, activations: np.ndarray, spec: GraphFaultSpec) -> np.ndarray:
        out = activations.copy()
        if out.ndim not in (2, 4):
            return out
        channel_axis_len = out.shape[1]
        if spec.channels:
            channels = np.asarray(spec.channels)
            channels = channels[channels < channel_axis_len]
        else:
            channels = np.arange(channel_axis_len)
        if channels.size == 0:
            return out
        selected = out[:, channels]
        if spec.fraction >= 1.0:
            mask = np.ones(selected.shape, dtype=bool)
        else:
            mask = self._rng.random(selected.shape) < spec.fraction
        out[:, channels] = np.where(mask, np.array(spec.value, dtype=selected.dtype), selected)
        return out

    def run(self, images: np.ndarray, specs: list[GraphFaultSpec]) -> np.ndarray:
        """Run inference with the graph-level faults applied; returns logits."""
        activations: dict[str, np.ndarray] = {}
        for node in self.model.nodes:
            if isinstance(node, QInput):
                activations[node.name] = node.quantize(images)
                continue
            inputs = [activations[src] for src in node.inputs]
            if isinstance(node, QConv):
                value = CPUBackend._conv(inputs[0], node)
            elif isinstance(node, QLinear):
                value = CPUBackend._linear(inputs[0], node)
            elif isinstance(node, QAdd):
                value = CPUBackend._add(inputs[0], inputs[1], node)
            elif isinstance(node, QMaxPool):
                value = max_pool_int8(inputs[0], node.kernel, node.stride, node.padding)
            elif isinstance(node, QGlobalAvgPool):
                value = CPUBackend._global_avg(inputs[0], node)
            else:
                raise TypeError(f"unsupported node type {type(node).__name__}")

            if isinstance(node, (QConv, QLinear)) and node.requant is not None:
                for spec in specs:
                    if spec.layer in ("*", node.name):
                        value = self._corrupt(value, spec)
            activations[node.name] = value
        return activations[self.model.output_name]

    def accuracy(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        specs: list[GraphFaultSpec],
        batch_size: int = 64,
    ) -> float:
        """Top-1 accuracy under graph-level fault injection."""
        correct = 0
        for start in range(0, len(labels), batch_size):
            batch = images[start : start + batch_size]
            logits = self.run(batch, specs)
            correct += int((logits.argmax(axis=-1) == labels[start : start + batch_size]).sum())
        return correct / max(len(labels), 1)
