"""A SAFFIRA-style systolic-array software simulator (the slow baseline).

The paper's conclusion contrasts its FPGA emulator (217 full ResNet-18
inferences per second) with a recent software framework that reaches 5.8
simulations per second while covering only two convolutional layers.  To
reproduce that comparison without the original (unavailable) tool, this
module implements a faithful-but-slow software simulator in the same spirit:

* the layer is lowered to a GEMM and executed on an ``rows x cols``
  output-stationary systolic array, cycle by cycle, with explicit operand
  skewing — the Uniform Recurrent Equation style of modelling;
* faults are applied to the product computed by a chosen PE in every cycle,
  so the fault semantics match the emulator's multiplier faults;
* like the original, it is only practical for a subset of layers, which is
  exactly the limitation the paper calls out.

The simulator is intentionally *not* optimised: its per-cycle Python loop is
the point of the comparison.  (Its results are still exact, and the test
suite checks a small layer against the vectorised engine.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.faults.injector import InjectionConfig
from repro.faults.sites import FaultSite
from repro.nn.functional import conv_output_size, im2col
from repro.quant.qlayers import QConv, QuantizedModel
from repro.runtime.gemm import exact_matmul
from repro.utils.bitops import ACCUMULATOR_WIDTH, saturate


@dataclass
class SimulationReport:
    """Outcome of simulating a set of layers for one image batch."""

    layers: list[str] = field(default_factory=list)
    cycles: int = 0
    wall_seconds: float = 0.0
    macs_simulated: int = 0

    @property
    def simulations_per_second(self) -> float:
        """Layer-set simulations per wall-clock second (the paper's metric)."""
        if self.wall_seconds == 0:
            return float("inf")
        return 1.0 / self.wall_seconds


class SystolicArraySimulator:
    """Cycle-by-cycle output-stationary systolic GEMM simulator."""

    def __init__(self, rows: int = 8, cols: int = 8):
        if rows <= 0 or cols <= 0:
            raise ValueError("array dimensions must be positive")
        self.rows = rows
        self.cols = cols

    # ------------------------------------------------------------------
    # Single-tile simulation
    # ------------------------------------------------------------------
    def _simulate_tile(
        self,
        a_tile: np.ndarray,  # (rows, depth)  weights rows
        b_tile: np.ndarray,  # (depth, cols)  activation columns
        faulty_pes: dict[tuple[int, int], int],
    ) -> tuple[np.ndarray, int]:
        """Simulate one output-stationary tile; returns (result, cycles).

        Operands are skewed diagonally as in a real systolic array: PE
        ``(r, c)`` multiplies ``a[r, t - r - c]`` with ``b[t - r - c, c]`` in
        cycle ``t`` (when the index is in range), accumulating locally.  A
        faulty PE has every product it computes replaced by the injected
        constant.
        """
        depth = a_tile.shape[1]
        rows, cols = self.rows, self.cols
        acc = np.zeros((rows, cols), dtype=np.int64)
        total_cycles = depth + rows + cols - 2
        for t in range(total_cycles):
            for r in range(rows):
                for c in range(cols):
                    k = t - r - c
                    if 0 <= k < depth:
                        product = int(a_tile[r, k]) * int(b_tile[k, c])
                        if (r, c) in faulty_pes:
                            product = faulty_pes[(r, c)]
                        acc[r, c] += product
        return saturate(acc, ACCUMULATOR_WIDTH), total_cycles

    # ------------------------------------------------------------------
    # Exact reference (shared fast-math core)
    # ------------------------------------------------------------------
    @staticmethod
    def reference_accumulator(x_q: np.ndarray, node: QConv) -> np.ndarray:
        """Fault-free accumulator of the layer via the exact GEMM core.

        The cycle-level simulator must reproduce this bit for bit on the
        positions it simulates; tests (and users sub-sampling with
        ``max_output_positions``) use it as the fast golden reference.
        """
        n, _, h, w = x_q.shape
        k = node.kernel_size
        out_h = conv_output_size(h, k, node.stride, node.padding)
        out_w = conv_output_size(w, k, node.stride, node.padding)
        cols = im2col(x_q, k, node.stride, node.padding)
        acc = exact_matmul(node.weight.reshape(node.out_channels, -1), cols)
        return saturate(acc, ACCUMULATOR_WIDTH).reshape(n, node.out_channels, out_h, out_w)

    # ------------------------------------------------------------------
    # Layer simulation
    # ------------------------------------------------------------------
    def simulate_conv(
        self,
        x_q: np.ndarray,
        node: QConv,
        config: InjectionConfig | None = None,
        max_output_positions: int | None = None,
    ) -> tuple[np.ndarray, SimulationReport]:
        """Simulate one convolution layer on the systolic array.

        Parameters
        ----------
        x_q:
            int8 input batch (N, IC, H, W).
        node:
            The quantised convolution.
        config:
            Constant-override fault configuration (value-dependent models are
            not supported by this baseline, matching its lower fidelity).
        max_output_positions:
            Optionally limit the number of simulated output pixels — software
            simulators commonly sub-sample to stay tractable; the report
            still records the cycle count of what was simulated.
        """
        config = config or InjectionConfig.fault_free()
        faulty_pes: dict[tuple[int, int], int] = {}
        for site, model in config.faults.items():
            constant = model.constant_override()
            if constant is None:
                raise ValueError(
                    "the systolic baseline only supports constant-override fault models"
                )
            faulty_pes[(site.mac_unit, site.multiplier)] = constant

        n, ic, h, w = x_q.shape
        k = node.kernel_size
        out_h = conv_output_size(h, k, node.stride, node.padding)
        out_w = conv_output_size(w, k, node.stride, node.padding)
        positions = out_h * out_w
        if max_output_positions is not None:
            positions = min(positions, max_output_positions)

        # Narrow int8 patch buffer; the per-cycle loop widens scalars itself
        # and tile placement into the int64 staging arrays casts implicitly.
        cols_buf = im2col(x_q, k, node.stride, node.padding)
        w_mat = node.weight.astype(np.int64).reshape(node.out_channels, -1)
        depth_total = w_mat.shape[1]

        acc = np.zeros((n, node.out_channels, out_h * out_w), dtype=np.int64)
        report = SimulationReport(layers=[node.name])
        start = time.perf_counter()

        for sample in range(n):
            for pos_base in range(0, positions, self.cols):
                pos_slice = range(pos_base, min(pos_base + self.cols, positions))
                b_full = cols_buf[sample][:, list(pos_slice)]  # (depth, <=cols)
                b_tile = np.zeros((depth_total, self.cols), dtype=np.int64)
                b_tile[:, : b_full.shape[1]] = b_full
                for oc_base in range(0, node.out_channels, self.rows):
                    oc_slice = range(oc_base, min(oc_base + self.rows, node.out_channels))
                    a_full = w_mat[list(oc_slice), :]
                    a_tile = np.zeros((self.rows, depth_total), dtype=np.int64)
                    a_tile[: a_full.shape[0], :] = a_full
                    # The depth dimension is streamed in chunks of the lane
                    # count so that the PE-to-lane fault mapping matches the
                    # emulator's channel-group interleaving.
                    result = np.zeros((self.rows, self.cols), dtype=np.int64)
                    for depth_base in range(0, depth_total, self.cols):
                        depth_slice = slice(depth_base, min(depth_base + self.cols, depth_total))
                        a_chunk = np.zeros((self.rows, self.cols), dtype=np.int64)
                        b_chunk = np.zeros((self.cols, self.cols), dtype=np.int64)
                        a_part = a_tile[:, depth_slice]
                        b_part = b_tile[depth_slice, :]
                        a_chunk[:, : a_part.shape[1]] = a_part
                        b_chunk[: b_part.shape[0], :] = b_part
                        tile_result, cycles = self._simulate_tile(a_chunk, b_chunk, faulty_pes)
                        result += tile_result
                        report.cycles += cycles
                        report.macs_simulated += self.rows * self.cols * self.cols
                    acc[sample][np.ix_(list(oc_slice), list(pos_slice))] = result[
                        : len(list(oc_slice)), : len(list(pos_slice))
                    ]

        report.wall_seconds = time.perf_counter() - start
        return acc.reshape(n, node.out_channels, out_h, out_w), report

    # ------------------------------------------------------------------
    # Multi-layer entry point
    # ------------------------------------------------------------------
    def simulate_layers(
        self,
        model: QuantizedModel,
        layer_names: list[str],
        x_by_layer: dict[str, np.ndarray],
        config: InjectionConfig | None = None,
        max_output_positions: int | None = None,
    ) -> SimulationReport:
        """Simulate a subset of a model's convolution layers.

        ``x_by_layer`` supplies the int8 input of each simulated layer
        (obtained from a fault-free reference run); this mirrors how
        layer-restricted software analyses operate.
        """
        combined = SimulationReport(layers=list(layer_names))
        for name in layer_names:
            node = model.node(name)
            if not isinstance(node, QConv):
                raise TypeError(f"{name!r} is not a convolution layer")
            _, report = self.simulate_conv(
                x_by_layer[name], node, config, max_output_positions=max_output_positions
            )
            combined.cycles += report.cycles
            combined.wall_seconds += report.wall_seconds
            combined.macs_simulated += report.macs_simulated
        return combined
