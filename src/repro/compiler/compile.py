"""End-to-end compilation: trained float graph -> loadable.

This is the offline flow the paper runs through Caffe + Tengine: fold
BatchNorm, calibrate activation ranges, quantise to int8 and tile the result
onto the MAC array.  The output is a :class:`~repro.compiler.loadable.Loadable`
that the runtime can submit to the accelerator emulator, plus the
intermediate artefacts for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accelerator.geometry import ArrayGeometry, PAPER_GEOMETRY
from repro.compiler.mapper import Mapper
from repro.compiler.ops import (
    CompiledOp,
    ConvOp,
    DepthwiseConvOp,
    EltwiseAddOp,
    FullyConnectedOp,
    GlobalAvgPoolOp,
    PoolOp,
)
from repro.compiler.loadable import Loadable
from repro.compiler.passes import fold_batchnorm
from repro.nn.graph import Graph
from repro.quant.calibrate import ActivationRanges, collect_activation_ranges
from repro.quant.qlayers import (
    QAdd,
    QConv,
    QDepthwiseConv,
    QGlobalAvgPool,
    QInput,
    QLinear,
    QMaxPool,
    QuantizedModel,
)
from repro.quant.quantize import quantize_graph
from repro.quant.shape_infer import infer_quantized_shapes


@dataclass
class CompilationResult:
    """All artefacts produced by :func:`compile_model`."""

    loadable: Loadable
    quantized_model: QuantizedModel
    folded_graph: Graph
    ranges: ActivationRanges


def _lower_to_ops(model: QuantizedModel, geometry: ArrayGeometry) -> tuple[list[CompiledOp], dict[str, int]]:
    """Lower a quantised model into compiled ops plus a surface plan."""
    mapper = Mapper(geometry)
    shapes = infer_quantized_shapes(model)
    ops: list[CompiledOp] = []
    surfaces: dict[str, int] = {}

    for node in model.nodes:
        if isinstance(node, QInput):
            c, h, w = node.shape
            surfaces[node.name] = c * h * w
            continue
        out_shape = shapes[node.name]
        out_bytes = 1
        for dim in out_shape:
            out_bytes *= int(dim)
        surfaces[node.name] = out_bytes

        if isinstance(node, QDepthwiseConv):
            # Must be tested before QConv: QDepthwiseConv is a QConv subclass
            # but lowers through its own mapping to a labeled plan entry.
            _, out_h, out_w = out_shape
            mapping = mapper.map_depthwise(node, out_h, out_w)
            ops.append(
                DepthwiseConvOp(
                    name=node.name,
                    inputs=tuple(node.inputs),
                    mapping=mapping,
                    weight_bytes=int(node.weight.size),
                    relu=node.relu,
                    output_bytes=out_bytes,
                )
            )
        elif isinstance(node, QConv):
            _, out_h, out_w = out_shape
            mapping = mapper.map_conv(node, out_h, out_w)
            ops.append(
                ConvOp(
                    name=node.name,
                    inputs=tuple(node.inputs),
                    mapping=mapping,
                    weight_bytes=int(node.weight.size),
                    relu=node.relu,
                    output_bytes=out_bytes,
                )
            )
        elif isinstance(node, QLinear):
            mapping = mapper.map_linear(node)
            ops.append(
                FullyConnectedOp(
                    name=node.name,
                    inputs=tuple(node.inputs),
                    mapping=mapping,
                    weight_bytes=int(node.weight.size),
                    output_bytes=out_bytes * 4,  # raw int32 logits
                )
            )
        elif isinstance(node, QMaxPool):
            ops.append(
                PoolOp(
                    name=node.name,
                    inputs=tuple(node.inputs),
                    kernel=node.kernel,
                    stride=node.stride,
                    padding=node.padding,
                    output_bytes=out_bytes,
                )
            )
        elif isinstance(node, QGlobalAvgPool):
            ops.append(
                GlobalAvgPoolOp(
                    name=node.name,
                    inputs=tuple(node.inputs),
                    spatial_size=node.spatial_size,
                    output_bytes=out_bytes,
                )
            )
        elif isinstance(node, QAdd):
            ops.append(
                EltwiseAddOp(
                    name=node.name,
                    inputs=tuple(node.inputs),
                    relu=node.relu,
                    output_bytes=out_bytes,
                )
            )
        else:
            raise TypeError(f"cannot lower node type {type(node).__name__}")
    return ops, surfaces


def compile_model(
    graph: Graph,
    calibration_images: np.ndarray,
    geometry: ArrayGeometry = PAPER_GEOMETRY,
    per_channel: bool = True,
    name: str = "network",
    calibration_percentile: float | None = 99.9,
) -> CompilationResult:
    """Compile a trained float graph into an accelerator loadable.

    Parameters
    ----------
    graph:
        Trained float graph (with BatchNorm layers; they are folded here).
    calibration_images:
        Representative inputs of shape (N, C, H, W) used for activation-range
        calibration.
    geometry:
        Target MAC-array geometry.
    per_channel:
        Per-output-channel weight quantisation (recommended).
    name:
        Name recorded in the loadable.
    calibration_percentile:
        Percentile used for activation ranges (``None`` = true max).
    """
    folded = fold_batchnorm(graph)
    folded.eval()
    ranges = collect_activation_ranges(
        folded, calibration_images, percentile=calibration_percentile
    )
    qmodel = quantize_graph(folded, ranges, per_channel=per_channel)
    ops, surfaces = _lower_to_ops(qmodel, geometry)
    loadable = Loadable(model=qmodel, ops=ops, geometry=geometry, name=name, surfaces=surfaces)
    return CompilationResult(
        loadable=loadable, quantized_model=qmodel, folded_graph=folded, ranges=ranges
    )
