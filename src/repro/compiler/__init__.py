"""Tengine-like compiler: float graph -> quantised model -> execution plan.

The paper converts a Caffe-trained CNN into an NVDLA execution plan with the
Tengine framework.  This subpackage provides the equivalent offline flow:

1. :mod:`repro.compiler.passes` — graph transformations (BatchNorm folding).
2. :mod:`repro.quant` — post-training int8 quantisation (invoked from here).
3. :mod:`repro.compiler.mapper` — tiling of conv/FC layers onto the MAC array
   (channel/kernel groups, atomic-operation counts, lane assignment).
4. :mod:`repro.compiler.loadable` — the execution plan ("loadable") consumed
   by the accelerator emulator and the runtime.

:func:`repro.compiler.compile.compile_model` runs the whole flow.
"""

from repro.compiler.passes import fold_batchnorm
from repro.compiler.mapper import ConvMapping, Mapper
from repro.compiler.ops import (
    CompiledOp,
    ConvOp,
    EltwiseAddOp,
    FullyConnectedOp,
    GlobalAvgPoolOp,
    PoolOp,
)
from repro.compiler.loadable import Loadable
from repro.compiler.compile import CompilationResult, compile_model

__all__ = [
    "fold_batchnorm",
    "Mapper",
    "ConvMapping",
    "CompiledOp",
    "ConvOp",
    "FullyConnectedOp",
    "PoolOp",
    "EltwiseAddOp",
    "GlobalAvgPoolOp",
    "Loadable",
    "compile_model",
    "CompilationResult",
]
