"""The loadable: a compiled execution plan plus its quantised weights.

A real NVDLA loadable bundles the per-layer command stream, tensor surface
descriptors and weight blobs.  The emulator's loadable keeps the same split:
an ordered list of :class:`~repro.compiler.ops.CompiledOp` records (the
command stream) and a reference to the :class:`QuantizedModel` (the weight
blobs and quantisation metadata).  It also records the memory-surface plan
and summary statistics, and can be serialised to a JSON-friendly dict for
inspection (weights excluded, like a loadable header dump).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.accelerator.geometry import ArrayGeometry, PAPER_GEOMETRY
from repro.accelerator.memory import MemoryModel
from repro.compiler.ops import CompiledOp, ConvOp, FullyConnectedOp, OpStatistics
from repro.quant.qlayers import QuantizedModel


@dataclass
class Loadable:
    """A compiled network ready for execution on the emulator."""

    model: QuantizedModel
    ops: list[CompiledOp] = field(default_factory=list)
    geometry: ArrayGeometry = PAPER_GEOMETRY
    name: str = "network"
    #: Per-surface byte sizes planned by the compiler (node name -> bytes).
    surfaces: dict[str, int] = field(default_factory=dict)

    def op_by_name(self, name: str) -> CompiledOp:
        for op in self.ops:
            if op.name == name:
                return op
        raise KeyError(f"no compiled op named {name!r}")

    def conv_like_ops(self) -> list[CompiledOp]:
        """Ops executed on the MAC array (the fault-injection targets)."""
        return [op for op in self.ops if isinstance(op, (ConvOp, FullyConnectedOp))]

    def statistics(self) -> OpStatistics:
        return OpStatistics.from_ops(self.ops)

    def total_atomic_ops(self) -> int:
        """Total CMAC atomic operations per inference (batch 1)."""
        return self.statistics().total_atomic_ops

    def total_macs(self) -> int:
        """Total useful multiply-accumulates per inference (excluding padding)."""
        return self.model.total_macs()

    # ------------------------------------------------------------------
    # Memory planning
    # ------------------------------------------------------------------
    def plan_memory(self, memory: MemoryModel | None = None) -> MemoryModel:
        """Allocate every surface of the plan in a (fresh) memory model."""
        memory = memory or MemoryModel()
        for name, num_bytes in self.surfaces.items():
            memory.allocate(name, num_bytes)
        return memory

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-friendly summary (no weight data)."""
        ops = []
        for op in self.ops:
            record: dict = {
                "name": op.name,
                "type": op.op_type,
                "engine": op.engine,
                "inputs": list(op.inputs),
                "output_bytes": op.output_bytes,
            }
            if isinstance(op, (ConvOp, FullyConnectedOp)):
                record.update(
                    {
                        "weight_bytes": op.weight_bytes,
                        "atomic_ops": op.mapping.total_atomic_ops,
                        "channel_groups": op.mapping.channel_groups,
                        "kernel_groups": op.mapping.kernel_groups,
                    }
                )
            ops.append(record)
        return {
            "name": self.name,
            "geometry": {
                "num_macs": self.geometry.num_macs,
                "muls_per_mac": self.geometry.muls_per_mac,
            },
            "num_ops": len(self.ops),
            "total_atomic_ops": self.total_atomic_ops(),
            "total_macs": self.total_macs(),
            "ops": ops,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def __len__(self) -> int:
        return len(self.ops)
