"""Graph transformation passes applied before quantisation.

The only mandatory pass is BatchNorm folding: the accelerator has no
BatchNorm engine, so every ``Conv2D -> BatchNorm2D`` pair is merged into a
single convolution with adjusted weights and bias.  Folding is exact in
inference mode (it uses the running statistics), so the folded graph
produces bit-identical float outputs, which the tests verify.
"""

from __future__ import annotations

import numpy as np

from repro.nn.graph import Graph
from repro.nn.layers import BatchNorm2D, Conv2D, DepthwiseConv2D, Layer
from repro.nn.tensor import Parameter


def _clone_layer(layer: Layer) -> Layer:
    """Deep-copy a layer: new instance of the same class with copied parameters."""
    import copy

    clone = copy.deepcopy(layer)
    clone._cache = {}
    return clone


def _fold_conv_bn(conv: Conv2D, bn: BatchNorm2D) -> Conv2D:
    """Return a new convolution equivalent to ``bn(conv(x))`` in eval mode."""
    gamma = bn.gamma.value.astype(np.float64)
    beta = bn.beta.value.astype(np.float64)
    mean = bn.running_mean.value.astype(np.float64)
    var = bn.running_var.value.astype(np.float64)
    std = np.sqrt(var + bn.eps)
    scale = gamma / std  # per output channel

    folded = Conv2D(
        conv.in_channels,
        conv.out_channels,
        conv.kernel_size,
        stride=conv.stride,
        padding=conv.padding,
        bias=True,
        name=conv.name,
    )
    folded.weight = Parameter(
        (conv.weight.value.astype(np.float64) * scale[:, None, None, None]).astype(np.float32),
        name=conv.weight.name,
    )
    old_bias = conv.bias.value.astype(np.float64) if conv.bias is not None else 0.0
    folded_bias = beta + (old_bias - mean) * scale
    folded.bias = Parameter(folded_bias.astype(np.float32), name=f"{conv.name}.bias")
    return folded


def _fold_depthwise_bn(conv: DepthwiseConv2D, bn: BatchNorm2D) -> DepthwiseConv2D:
    """Return a new depthwise conv equivalent to ``bn(conv(x))`` in eval mode."""
    gamma = bn.gamma.value.astype(np.float64)
    beta = bn.beta.value.astype(np.float64)
    mean = bn.running_mean.value.astype(np.float64)
    var = bn.running_var.value.astype(np.float64)
    std = np.sqrt(var + bn.eps)
    scale = gamma / std  # per channel

    folded = DepthwiseConv2D(
        conv.channels,
        conv.kernel_size,
        stride=conv.stride,
        padding=conv.padding,
        bias=True,
        name=conv.name,
    )
    folded.weight = Parameter(
        (conv.weight.value.astype(np.float64) * scale[:, None, None, None]).astype(np.float32),
        name=conv.weight.name,
    )
    old_bias = conv.bias.value.astype(np.float64) if conv.bias is not None else 0.0
    folded_bias = beta + (old_bias - mean) * scale
    folded.bias = Parameter(folded_bias.astype(np.float32), name=f"{conv.name}.bias")
    return folded


def fold_batchnorm(graph: Graph) -> Graph:
    """Fold every ``Conv2D -> BatchNorm2D`` pair of ``graph`` into one conv.

    The input graph is not modified.  BatchNorm nodes that do not directly
    follow a convolution (none exist in ResNet) are rejected because the
    accelerator cannot execute them.
    """
    folded = Graph(graph.input_shape)
    #: maps original node names to their name in the folded graph
    alias: dict[str, str] = {Graph.INPUT: Graph.INPUT}
    skipped: set[str] = set()

    order = graph.topological_order()
    for name in order:
        if name in skipped:
            continue
        node = graph.nodes[name]
        layer = node.layer

        if isinstance(layer, (Conv2D, DepthwiseConv2D)):
            consumers = graph.consumers(name)
            bn_consumer = None
            if len(consumers) == 1 and isinstance(graph.nodes[consumers[0]].layer, BatchNorm2D):
                bn_consumer = consumers[0]
            if bn_consumer is not None:
                bn_layer = graph.nodes[bn_consumer].layer
                if isinstance(layer, DepthwiseConv2D):
                    new_layer = _fold_depthwise_bn(layer, bn_layer)
                else:
                    new_layer = _fold_conv_bn(layer, bn_layer)
                inputs = [alias[src] for src in node.inputs]
                folded.add(name, new_layer, inputs)
                alias[name] = name
                alias[bn_consumer] = name
                skipped.add(bn_consumer)
                continue
            # Convolution without a BatchNorm behind it: copy as-is.
            folded.add(name, _clone_layer(layer), [alias[src] for src in node.inputs])
            alias[name] = name
            continue

        if isinstance(layer, BatchNorm2D):
            raise ValueError(
                f"BatchNorm node {name!r} does not follow a convolution and cannot be "
                "folded; the accelerator has no standalone BatchNorm engine"
            )

        folded.add(name, _clone_layer(layer), [alias[src] for src in node.inputs])
        alias[name] = name

    folded.set_output(alias[graph.output_name])
    return folded


def count_batchnorm_nodes(graph: Graph) -> int:
    """Number of BatchNorm layers remaining in a graph (0 after folding)."""
    return sum(1 for node in graph.nodes.values() if isinstance(node.layer, BatchNorm2D))
