"""Compiled operation records: the entries of an execution plan.

Each record names the quantised node it executes, its data dependencies and
the hardware engine it runs on, plus the tiling/traffic information the
timing model and the memory allocator need.  Weights themselves stay in the
:class:`~repro.quant.qlayers.QuantizedModel`; the loadable references them by
node name, mirroring how a real loadable separates the command stream from
the weight blobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.mapper import ConvMapping


@dataclass(frozen=True)
class CompiledOp:
    """Base class of all execution-plan entries."""

    name: str
    inputs: tuple[str, ...]
    #: Hardware engine executing the op (CMAC+CACC+SDP, SDP only, PDP, ...).
    engine: str = "none"
    #: Output surface size in bytes (int8 elements, batch 1).
    output_bytes: int = 0

    @property
    def op_type(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class ConvOp(CompiledOp):
    """A convolution executed on the MAC array + SDP post-processing."""

    engine: str = "CMAC"
    mapping: ConvMapping = None
    weight_bytes: int = 0
    relu: bool = False


@dataclass(frozen=True)
class DepthwiseConvOp(ConvOp):
    """A depthwise convolution expanded to a dense MAC-array convolution.

    Executes exactly like :class:`ConvOp` (the expanded one-hot weight is an
    ordinary dense filter bank to the hardware) but stays a distinct plan
    entry: the scheduling is pathological — ``C`` input-channel groups feed
    each output channel with all-but-one group multiplying by zero — which is
    precisely the im2col/tiling shape the depthwise workload is meant to
    exercise, and reports/statistics want to see it labeled.
    """


@dataclass(frozen=True)
class FullyConnectedOp(CompiledOp):
    """A fully-connected layer executed on the MAC array."""

    engine: str = "CMAC"
    mapping: ConvMapping = None
    weight_bytes: int = 0


@dataclass(frozen=True)
class PoolOp(CompiledOp):
    """Max pooling executed on the PDP."""

    engine: str = "PDP"
    kernel: int = 2
    stride: int = 2
    padding: int = 0


@dataclass(frozen=True)
class GlobalAvgPoolOp(CompiledOp):
    """Global average pooling (PDP average mode + SDP rescale)."""

    engine: str = "PDP"
    spatial_size: int = 1


@dataclass(frozen=True)
class EltwiseAddOp(CompiledOp):
    """Residual addition executed on the SDP elementwise path."""

    engine: str = "SDP"
    relu: bool = False


@dataclass
class OpStatistics:
    """Aggregate statistics over an execution plan (reported by benchmarks)."""

    num_conv: int = 0
    num_fc: int = 0
    num_pool: int = 0
    num_eltwise: int = 0
    total_atomic_ops: int = 0
    total_weight_bytes: int = 0
    total_output_bytes: int = 0
    per_op: list[tuple[str, str, int]] = field(default_factory=list)

    @classmethod
    def from_ops(cls, ops: list[CompiledOp]) -> "OpStatistics":
        stats = cls()
        for op in ops:
            atomic = 0
            if isinstance(op, ConvOp):
                stats.num_conv += 1
                stats.total_weight_bytes += op.weight_bytes
                atomic = op.mapping.total_atomic_ops
            elif isinstance(op, FullyConnectedOp):
                stats.num_fc += 1
                stats.total_weight_bytes += op.weight_bytes
                atomic = op.mapping.total_atomic_ops
            elif isinstance(op, (PoolOp, GlobalAvgPoolOp)):
                stats.num_pool += 1
            elif isinstance(op, EltwiseAddOp):
                stats.num_eltwise += 1
            stats.total_atomic_ops += atomic
            stats.total_output_bytes += op.output_bytes
            stats.per_op.append((op.name, op.op_type, atomic))
        return stats
