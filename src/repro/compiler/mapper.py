"""Mapping of conv/FC layers onto the MAC array.

The mapper decides how a layer's loops are tiled over the hardware: input
channels are split into groups of ``atomic_c`` (one group per multiplier
lane sweep), output channels into groups of ``atomic_k`` (one per MAC unit
sweep).  Beyond producing the counts needed by the timing model, the mapper
is the single source of truth for the **lane assignment** — which multiplier
computes which (input channel, output channel) product — that both execution
engines and the fault-site sensitivity analysis rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.geometry import ArrayGeometry, PAPER_GEOMETRY
from repro.faults.sites import FaultSite
from repro.quant.qlayers import QConv, QLinear


@dataclass(frozen=True)
class ConvMapping:
    """How one conv/FC layer is tiled onto the MAC array."""

    name: str
    in_channels: int
    out_channels: int
    kernel_size: int
    out_h: int
    out_w: int
    channel_groups: int
    kernel_groups: int

    @property
    def atomic_ops_per_output(self) -> int:
        """Atomic operations contributing to one (output channel group, pixel)."""
        return self.channel_groups * self.kernel_size * self.kernel_size

    @property
    def total_atomic_ops(self) -> int:
        """Total atomic operations (= CMAC cycles) of the layer."""
        return self.out_h * self.out_w * self.kernel_groups * self.atomic_ops_per_output

    @property
    def total_products(self) -> int:
        """Total multiplier products computed, including padding lanes."""
        return self.total_atomic_ops  # each atomic op uses every multiplier once

    def products_per_multiplier(self) -> int:
        """Products computed by each individual multiplier during the layer."""
        return self.total_atomic_ops


class Mapper:
    """Computes :class:`ConvMapping` records and lane assignments."""

    def __init__(self, geometry: ArrayGeometry = PAPER_GEOMETRY):
        self.geometry = geometry

    # ------------------------------------------------------------------
    # Lane assignment (the contract shared with the execution engines)
    # ------------------------------------------------------------------
    def lane_of_input_channel(self, channel: int) -> int:
        """Multiplier lane processing input channel ``channel``."""
        return channel % self.geometry.atomic_c

    def mac_of_output_channel(self, channel: int) -> int:
        """MAC unit producing output channel ``channel``."""
        return channel % self.geometry.atomic_k

    def site_for_channels(self, in_channel: int, out_channel: int) -> FaultSite:
        """The multiplier that computes the (in_channel, out_channel) products."""
        return FaultSite(
            mac_unit=self.mac_of_output_channel(out_channel),
            multiplier=self.lane_of_input_channel(in_channel),
        )

    def channels_of_site(
        self, site: FaultSite, in_channels: int, out_channels: int
    ) -> tuple[list[int], list[int]]:
        """Inverse of :meth:`site_for_channels` for a given layer shape."""
        ins = [c for c in range(in_channels) if self.lane_of_input_channel(c) == site.multiplier]
        outs = [c for c in range(out_channels) if self.mac_of_output_channel(c) == site.mac_unit]
        return ins, outs

    # ------------------------------------------------------------------
    # Tiling
    # ------------------------------------------------------------------
    def map_conv(self, node: QConv, out_h: int, out_w: int) -> ConvMapping:
        return ConvMapping(
            name=node.name,
            in_channels=node.in_channels,
            out_channels=node.out_channels,
            kernel_size=node.kernel_size,
            out_h=out_h,
            out_w=out_w,
            channel_groups=self.geometry.channel_groups(node.in_channels),
            kernel_groups=self.geometry.kernel_groups(node.out_channels),
        )

    def map_depthwise(self, node: QConv, out_h: int, out_w: int) -> ConvMapping:
        """Tile a compiler-expanded depthwise convolution.

        The expanded weight is dense ``(C, C, K, K)``, so the tiling is the
        dense-conv tiling over the *expanded* channel count: every one of the
        ``channel_groups(C)`` input sweeps runs even though only one lane per
        output channel carries non-zero taps.  That inefficiency is faithful
        to running depthwise work on an accelerator without a native
        depthwise mode and is exactly what the timing model should charge.
        """
        return ConvMapping(
            name=node.name,
            in_channels=node.in_channels,
            out_channels=node.out_channels,
            kernel_size=node.kernel_size,
            out_h=out_h,
            out_w=out_w,
            channel_groups=self.geometry.channel_groups(node.in_channels),
            kernel_groups=self.geometry.kernel_groups(node.out_channels),
        )

    def map_linear(self, node: QLinear) -> ConvMapping:
        """An FC layer maps as a 1x1 convolution over a 1x1 feature map."""
        return ConvMapping(
            name=node.name,
            in_channels=node.in_features,
            out_channels=node.out_features,
            kernel_size=1,
            out_h=1,
            out_w=1,
            channel_groups=self.geometry.channel_groups(node.in_features),
            kernel_groups=self.geometry.kernel_groups(node.out_features),
        )
