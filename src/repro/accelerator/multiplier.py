"""Bit-accurate model of one signed 8-bit multiplier with its fault injector.

This is the unit the paper's fault injection targets: a signed 8x8-bit
multiplier whose 18-bit product bus passes through the per-bit override mux
of :class:`~repro.faults.injector.FaultInjector`.  The scalar reference
engine instantiates 64 of these; the vectorised engine reproduces the same
arithmetic with numpy and is validated against this model.
"""

from __future__ import annotations

import numpy as np

from repro.faults.injector import FaultInjector
from repro.faults.models import FaultModel
from repro.utils.bitops import OPERAND_WIDTH, PRODUCT_WIDTH, to_signed, to_unsigned


class Int8Multiplier:
    """One signed 8-bit multiplier with an optional fault model on its output.

    Two fault hooks are supported, matching the two abstraction levels used
    in the library:

    * ``injector`` — the bit-level ``fsel``/``fdata`` mux (hardware view),
    * ``fault_model`` — a :class:`~repro.faults.models.FaultModel` applied to
      the signed product (campaign view).

    When both are configured the bit-level injector takes precedence, because
    that is what the synthesised hardware would do.
    """

    def __init__(
        self,
        injector: FaultInjector | None = None,
        fault_model: FaultModel | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.injector = injector or FaultInjector.disabled()
        self.fault_model = fault_model
        self._rng = rng or np.random.default_rng(0)
        #: Number of multiplications performed (used by the timing cross-checks).
        self.cycles = 0

    def set_fault_model(self, model: FaultModel | None) -> None:
        if model is not None and model.stage != "product":
            raise ValueError(
                f"{model.label()} attacks the {model.stage} stage and cannot be "
                "attached to a multiplier lane; arm it through the CMAC array"
            )
        self.fault_model = model

    def clear_faults(self) -> None:
        self.injector = FaultInjector.disabled()
        self.fault_model = None

    def multiply(self, a: int, b: int) -> int:
        """Return the (possibly faulty) signed product of two int8 operands."""
        a = int(a)
        b = int(b)
        lo = -(1 << (OPERAND_WIDTH - 1))
        hi = (1 << (OPERAND_WIDTH - 1)) - 1
        if not lo <= a <= hi or not lo <= b <= hi:
            raise ValueError(f"operands ({a}, {b}) do not fit in signed {OPERAND_WIDTH} bits")
        self.cycles += 1

        product = a * b  # fits comfortably on the 18-bit bus (max |16256|)
        if self.injector.enabled:
            return int(self.injector.apply_signed(product))
        if self.fault_model is not None:
            if self.fault_model.cycle_dependent:
                # This multiplier fires once per atomic operation, so its own
                # multiply counter *is* the schedule's per-layer cycle index.
                faulty = self.fault_model.apply_at(
                    np.array([product], dtype=np.int64),
                    np.array([self.cycles - 1], dtype=np.int64),
                )
            else:
                faulty = self.fault_model.apply(np.array([product], dtype=np.int64), self._rng)
            return int(faulty[0])
        return product

    def fault_free_product(self, a: int, b: int) -> int:
        """The product the multiplier would produce with no fault (for tests)."""
        return int(a) * int(b)

    def product_bus(self, a: int, b: int) -> int:
        """The unsigned 18-bit pattern observed on the (possibly faulty) bus."""
        return int(to_unsigned(self.multiply(a, b), PRODUCT_WIDTH))

    @property
    def faulty(self) -> bool:
        return self.injector.enabled or self.fault_model is not None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "faulty" if self.faulty else "healthy"
        return f"Int8Multiplier({state}, cycles={self.cycles})"
