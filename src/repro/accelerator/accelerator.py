"""The accelerator facade: executes a compiled loadable end to end.

:class:`NVDLAAccelerator` glues the datapath models together the way the
platform of Fig. 1 does: the runtime programs each operation over the CSB,
the CMAC/CACC engine (vectorised or scalar reference) produces raw
accumulators for conv/FC layers with the currently armed fault injection
configuration applied, the SDP adds bias / requantises / applies ReLU and
elementwise additions, and the PDP performs pooling.  The final classifier
logits are returned as raw int32 accumulators.
"""

from __future__ import annotations

import numpy as np

from repro.accelerator.csb import ConfigSpaceBus
from repro.accelerator.engine import CleanAccumulatorCache, VectorisedEngine, config_fusable
from repro.accelerator.geometry import ArrayGeometry, PAPER_GEOMETRY
from repro.accelerator.pdp import PDP
from repro.accelerator.reference import ScalarReferenceEngine
from repro.accelerator.sdp import SDP
from repro.accelerator.tape import CleanForwardTape, arrays_match
from repro.accelerator.timing import TimingModel, TimingReport
from repro.compiler.loadable import Loadable
from repro.compiler.ops import ConvOp, EltwiseAddOp, FullyConnectedOp, GlobalAvgPoolOp, PoolOp
from repro.faults.injector import InjectionConfig
from repro.faults.models import flip_int8_bytes
from repro.faults.registers import FaultInjectionRegisterFile
from repro.faults.sites import FaultUniverse
from repro.quant.qlayers import QAdd, QConv, QGlobalAvgPool, QLinear, QMaxPool
from repro.utils.profiling import PROFILER


class NVDLAAccelerator:
    """Behavioural model of the fault-injection-capable NVDLA accelerator.

    Parameters
    ----------
    geometry:
        MAC-array shape (8x8 in the paper).
    engine:
        ``"vectorised"`` (default, fast) or ``"scalar"`` (literal reference,
        only practical for tiny layers).
    seed:
        Seed for fault models that need randomness (transient pulses).
    cache_entries:
        Size of the vectorised engine's clean-accumulator cache (0 disables
        it).  Campaigns that re-run a frozen image batch under many fault
        configurations reuse each layer's im2col buffer and clean GEMM and
        pay only the correction-term cost; results are bit-identical either
        way.  Ignored by the scalar reference engine.
    tape_bytes:
        Byte budget of the clean-activation tape (0 disables it).  The tape
        records the whole clean forward per batch chunk during the baseline
        pass; trials then re-execute only the network suffix that diverges
        from the clean run (see :mod:`repro.accelerator.tape`).  Ignored by
        the scalar reference engine.
    """

    def __init__(
        self,
        geometry: ArrayGeometry = PAPER_GEOMETRY,
        engine: str = "vectorised",
        seed: int = 0,
        cache_entries: int = 0,
        tape_bytes: int = 0,
    ):
        self.geometry = geometry
        rng = np.random.default_rng(seed)
        if engine == "vectorised":
            cache = CleanAccumulatorCache(cache_entries) if cache_entries > 0 else None
            tape = CleanForwardTape(tape_bytes) if tape_bytes > 0 else None
            self.engine = VectorisedEngine(geometry, rng=rng, clean_cache=cache, tape=tape)
        elif engine == "scalar":
            self.engine = ScalarReferenceEngine(geometry, rng=rng)
        else:
            raise ValueError(f"unknown engine {engine!r}; use 'vectorised' or 'scalar'")
        self.engine_name = engine
        self.sdp = SDP()
        self.pdp = PDP()
        self.csb = ConfigSpaceBus()
        self.fi_registers = FaultInjectionRegisterFile(
            FaultUniverse(geometry.num_macs, geometry.muls_per_mac)
        )
        self._injection = InjectionConfig.fault_free()

    # ------------------------------------------------------------------
    # Fault injection control
    # ------------------------------------------------------------------
    def set_injection_config(self, config: InjectionConfig | None) -> None:
        """Arm a fault-injection configuration for subsequent inferences.

        Uniform constant-override configurations are additionally written to
        the AXI register-file model, so the control path stays faithful to
        the platform; mixed or value-dependent configurations bypass the
        register encoding (the paper notes such models require modifying the
        injector RTL).
        """
        self._injection = config or InjectionConfig.fault_free()
        try:
            self.fi_registers.program_config(self._injection)
        except ValueError:
            # Not representable on the register map (mixed models); the
            # emulator still honours the configuration directly.
            self.fi_registers.reset()

    def clear_faults(self) -> None:
        self.set_injection_config(InjectionConfig.fault_free())

    @property
    def injection_config(self) -> InjectionConfig:
        return self._injection

    # ------------------------------------------------------------------
    # Clean-accumulator cache lifecycle
    # ------------------------------------------------------------------
    @property
    def clean_cache(self) -> CleanAccumulatorCache | None:
        """The engine's clean-accumulator cache, if one is armed."""
        return getattr(self.engine, "clean_cache", None)

    @property
    def tape(self) -> CleanForwardTape | None:
        """The engine's clean-activation tape, if one is armed."""
        return getattr(self.engine, "tape", None)

    def reset_caches(self) -> None:
        """Drop cached clean accumulators (e.g. between unrelated campaigns)."""
        cache = self.clean_cache
        if cache is not None:
            cache.clear()
        tape = self.tape
        if tape is not None:
            tape.clear()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _program_op(self, op, node) -> None:
        """Program one operation over the CSB (shared by both execute paths)."""
        if isinstance(op, ConvOp):
            self.csb.program_operation(
                op.name,
                {
                    "D_DATAIN_CHANNEL": node.in_channels,
                    "D_DATAOUT_CHANNEL": node.out_channels,
                    "D_KERNEL_SIZE": node.kernel_size,
                    "D_STRIDE": node.stride,
                    "D_PAD": node.padding,
                },
            )
        elif isinstance(op, FullyConnectedOp):
            self.csb.program_operation(
                op.name,
                {"D_IN_FEATURES": node.in_features, "D_OUT_FEATURES": node.out_features},
            )
        elif isinstance(op, PoolOp):
            self.csb.program_operation(
                op.name, {"D_POOL_KERNEL": op.kernel, "D_POOL_STRIDE": op.stride}
            )
        elif isinstance(op, GlobalAvgPoolOp):
            self.csb.program_operation(op.name, {"D_POOL_SPATIAL": op.spatial_size})
        elif isinstance(op, EltwiseAddOp):
            self.csb.program_operation(op.name, {"D_EW_RELU": int(op.relu)})
        else:
            raise TypeError(f"cannot execute op type {type(op).__name__}")
        self.csb.ring_doorbell()

    def _dma_input(self, qinput: np.ndarray) -> np.ndarray:
        """Apply armed input-pipeline corruption at the DMA boundary.

        The runtime quantises images on the host and DMA-transfers them into
        the accelerator; an ``input``-surface fault flips the armed bit of
        each sample's staged transfer.  This happens upstream of both
        engines (scalar and vectorised see the same corrupted input), and
        upstream of the tape lookup — a corrupted input fails the segment's
        byte verification, so a taped clean forward is never replayed for
        it.
        """
        flips = self._injection.input_flips() if self._injection.enabled else []
        if flips:
            qinput = flip_int8_bytes(qinput, flips, per_sample=True)
        return qinput

    def _tape_context(self, qinput: np.ndarray, chunk_key: tuple | None):
        """``(segment, recording, qinput)`` for one chunk execution.

        During the fault-free baseline pass a fresh segment is recorded;
        during trials the verified segment of the chunk (or ``None``) is
        replayed.  On a replay hit the *taped* quantised input is handed
        back so downstream clean-prefix checks succeed by pointer identity.
        """
        tape = self.tape
        if tape is None or chunk_key is None:
            return None, False, qinput
        if tape.recording:
            if self._injection.enabled:
                return None, False, qinput
            return tape.begin_segment(chunk_key, qinput), True, qinput
        segment = tape.segment_for(chunk_key, qinput)
        if segment is not None:
            qinput = segment.qinput
        return segment, False, qinput

    def execute(
        self,
        loadable: Loadable,
        images: np.ndarray,
        return_activations: bool = False,
        chunk_key: tuple | None = None,
    ):
        """Run inference on a batch of float images.

        The input is quantised with the loadable's input scale (the runtime
        does this on the ARM cores in the real platform), every op of the
        execution plan is programmed and executed in order, and the raw
        int32/int64 logits of the final layer are returned (shape
        ``(N, num_classes)``).

        ``chunk_key`` identifies the batch's position in an evaluation loop
        (``(start, length)``) and arms the clean-activation tape: the
        fault-free baseline pass records the clean forward of each chunk,
        and subsequent trial passes re-execute only the suffix of the
        network that diverges from it — an op whose inputs are still the
        taped clean activations is skipped (conv/FC ops skip their GEMM and
        pay only the fault-correction term), and an op whose output comes
        out byte-identical to the clean output hands the taped object
        downstream.  Values are only ever substituted under byte equality,
        so the logits are bit-identical to a full execution.
        """
        model = loadable.model
        input_node = model.input_node
        qinput = self._dma_input(input_node.quantize(images))
        segment, recording, qinput = self._tape_context(qinput, chunk_key)
        replaying = segment is not None and not recording
        activations: dict[str, np.ndarray] = {input_node.name: qinput}
        self.csb.reset()
        # The delta trial engine (tape armed) routes post-processing through
        # the in-place SDP variants; tape-less platforms keep the reference
        # chain so the PR 2 execution path stays reproducible for
        # differential tests and benchmarks.
        fast = self.tape is not None
        conv_post = self.sdp.conv_post_owned if fast else self.sdp.conv_post
        if fast:
            self.engine.tape_segment = segment
            self.engine.tape_chunk_active = chunk_key is not None

        try:
            # Per-inference GEMM execution index: the dwell clock of
            # memory-resident faults.  It advances once per conv/FC op in
            # plan order and resets for every inference, so dwell windows
            # are invariant to how the evaluation loop chunks the batch.
            gemm_index = 0
            for op in loadable.ops:
                node = model.node(op.name)
                inputs = [activations[src] for src in op.inputs]
                self._program_op(op, node)
                entry = segment.entry(op.name) if replaying else None
                is_gemm_op = isinstance(op, (ConvOp, FullyConnectedOp))

                if entry is not None and not is_gemm_op:
                    # Non-GEMM ops carry no fault site: clean inputs imply
                    # the clean output.  Taped outputs propagate as the same
                    # objects, so identity is the complete check here.
                    if all(x is ref for x, ref in zip(inputs, entry.inputs)):
                        activations[op.name] = entry.output
                        continue

                if isinstance(op, ConvOp):
                    assert isinstance(node, QConv)
                    acc = self.engine.conv_accumulate(
                        inputs[0], node, self._injection, exec_index=gemm_index
                    )
                    gemm_index += 1
                    start = PROFILER.tick()
                    out = conv_post(acc, node, channel_axis=1)
                    PROFILER.tock("requant", start)
                elif isinstance(op, FullyConnectedOp):
                    assert isinstance(node, QLinear)
                    acc = self.engine.linear_accumulate(
                        inputs[0], node, self._injection, exec_index=gemm_index
                    )
                    gemm_index += 1
                    start = PROFILER.tick()
                    out = conv_post(acc, node, channel_axis=1)
                    PROFILER.tock("requant", start)
                elif isinstance(op, PoolOp):
                    assert isinstance(node, QMaxPool)
                    out = self.pdp.max_pool(inputs[0], node)
                elif isinstance(op, GlobalAvgPoolOp):
                    assert isinstance(node, QGlobalAvgPool)
                    out = (
                        self.sdp.global_average_owned(inputs[0], node)
                        if fast
                        else self.sdp.global_average(inputs[0], node)
                    )
                else:
                    assert isinstance(node, QAdd)
                    out = (
                        self.sdp.elementwise_add_owned(inputs[0], inputs[1], node)
                        if fast
                        else self.sdp.elementwise_add(inputs[0], inputs[1], node)
                    )

                if recording:
                    segment.record(op.name, tuple(inputs), out)
                elif entry is not None and arrays_match(out, entry.output):
                    # Masked fault: the trial re-converged onto the clean
                    # forward — hand the taped object downstream so the rest
                    # of the network is skipped by identity.
                    out = entry.output
                activations[op.name] = out
        finally:
            if fast:
                self.engine.tape_segment = None
                self.engine.tape_chunk_active = False
        if recording:
            self.tape.commit_segment(segment)

        logits = activations[model.output_name]
        if return_activations:
            return logits, activations
        return logits

    @staticmethod
    def _to_stack(state: tuple[str, np.ndarray], groups: int) -> np.ndarray:
        """Materialise a per-trial stack from a clean/stacked activation state."""
        kind, array = state
        if kind == "stack":
            return array
        reps = (groups,) + (1,) * (array.ndim - 1)
        return np.tile(array, reps)

    def execute_fused(
        self,
        loadable: Loadable,
        images: np.ndarray,
        configs: list[InjectionConfig],
        chunk_key: tuple | None = None,
    ) -> np.ndarray:
        """Run ``len(configs)`` fault trials over one batch in a single pass.

        The trials share the clean input batch, so their forward passes are
        identical until the first diverging layer.  Per-op activations are
        tracked as either *clean* (one shared array — all trials still equal
        the fault-free forward) or a *stack* of per-trial arrays
        ``(G*N, ...)``:

        * a conv/FC op on a clean input evaluates the clean GEMM once (from
          the tape when available) and applies each trial's correction term
          to its slice of the stacked accumulator;
        * a conv/FC op on diverged inputs runs **one** stacked im2col + GEMM
          for the whole group instead of G per-trial passes — the per-trial
          Python and BLAS dispatch overhead is paid once;
        * non-GEMM ops on clean inputs are skipped outright; on stacks they
          execute once over the whole stack (requant, pooling and additions
          are per-sample, so slices equal the per-trial results bit for
          bit);
        * when every trial's output of an op equals the taped clean output,
          the state collapses back to clean and the suffix is skipped again.

        Returns the stacked logits ``(G*N, num_classes)`` where slice ``g``
        is bit-identical to ``execute`` with ``configs[g]`` armed.

        Requires the vectorised engine, no injection armed on the
        accelerator itself, and only fusable fault models (see
        :func:`~repro.accelerator.engine.config_fusable`).
        """
        if self.engine_name != "vectorised":
            raise NotImplementedError("fused multi-trial execution needs the vectorised engine")
        if self._injection.enabled:
            raise RuntimeError(
                "fused execution evaluates explicit per-trial configurations; "
                "disarm the accelerator-level injection first"
            )
        if not configs:
            raise ValueError("execute_fused needs at least one configuration")
        unfusable = [c.describe() for c in configs if not config_fusable(c)]
        if unfusable:
            raise ValueError(
                f"configuration(s) {unfusable} arm RNG-dependent fault models "
                "and cannot be fused; evaluate them one at a time"
            )

        groups = len(configs)
        per_trial = len(images)
        model = loadable.model
        input_node = model.input_node
        qinput = input_node.quantize(images)
        segment, _, qinput = self._tape_context(qinput, chunk_key)
        if self.tape is not None and self.tape.recording:
            segment = None  # never record from a faulty pass

        states: dict[str, tuple[str, np.ndarray]] = {input_node.name: ("clean", qinput)}
        self.csb.reset()
        if self.tape is not None:
            # Chunk-keyed fused runs must not hash one-shot activations into
            # the digest cache when the chunk's segment is missing.
            self.engine.tape_chunk_active = chunk_key is not None

        try:
            return self._execute_fused_ops(
                loadable, segment, states, configs, per_trial
            )
        finally:
            if self.tape is not None:
                self.engine.tape_chunk_active = False

    def _execute_fused_ops(
        self, loadable, segment, states, configs, per_trial
    ) -> np.ndarray:
        groups = len(configs)
        model = loadable.model
        for op in loadable.ops:
            node = model.node(op.name)
            in_states = [states[src] for src in op.inputs]
            all_clean = all(kind == "clean" for kind, _ in in_states)
            entry = segment.entry(op.name) if segment is not None else None
            self._program_op(op, node)

            if isinstance(op, (ConvOp, FullyConnectedOp)):
                fused = (
                    self.engine.conv_accumulate_fused
                    if isinstance(op, ConvOp)
                    else self.engine.linear_accumulate_fused
                )
                if all_clean:
                    x_clean = in_states[0][1]
                    if (
                        entry is not None
                        and entry.acc is not None
                        and arrays_match(x_clean, entry.inputs[0])
                    ):
                        acc_stack = fused(node, configs, per_trial, clean_entry=entry)
                    else:
                        acc_stack = fused(node, configs, per_trial, x_clean=x_clean)
                else:
                    x_stack = self._to_stack(in_states[0], groups)
                    acc_stack = fused(node, configs, per_trial, x_stack=x_stack)
                start = PROFILER.tick()
                out = self.sdp.conv_post_owned(acc_stack, node, channel_axis=1)
                PROFILER.tock("requant", start)
                states[op.name] = self._collapsed(out, entry, groups, per_trial)
                continue

            if all_clean:
                # No fault site lives in pooling/addition: clean inputs give
                # the clean output, computed once (or taken from the tape).
                inputs = [arr for _, arr in in_states]
                if entry is not None and all(
                    arrays_match(x, ref) for x, ref in zip(inputs, entry.inputs)
                ):
                    states[op.name] = ("clean", entry.output)
                    continue
                out = self._run_simple_op(op, node, inputs)
                states[op.name] = ("clean", out)
                continue

            stacked = [self._to_stack(state, groups) for state in in_states]
            out = self._run_simple_op(op, node, stacked)
            states[op.name] = self._collapsed(out, entry, groups, per_trial)

        kind, logits = states[model.output_name]
        if kind == "clean":
            logits = self._to_stack((kind, logits), groups)
        return logits

    def _run_simple_op(self, op, node, inputs: list[np.ndarray]) -> np.ndarray:
        """Execute one non-GEMM op on the given activations (owned SDP chain)."""
        if isinstance(op, PoolOp):
            assert isinstance(node, QMaxPool)
            return self.pdp.max_pool(inputs[0], node)
        if isinstance(op, GlobalAvgPoolOp):
            assert isinstance(node, QGlobalAvgPool)
            return self.sdp.global_average_owned(inputs[0], node)
        assert isinstance(node, QAdd)
        return self.sdp.elementwise_add_owned(inputs[0], inputs[1], node)

    @staticmethod
    def _collapsed(
        stack: np.ndarray, entry, groups: int, per_trial: int
    ) -> tuple[str, np.ndarray]:
        """Collapse a trial stack back to the clean state when possible.

        Every trial slice must be byte-identical to the taped clean output
        (all faults masked so far); the comparison bails out on the first
        diverging trial, so the common (diverged) case costs one slice
        compare.
        """
        if entry is None or entry.output.shape[0] != per_trial:
            return ("stack", stack)
        reference = entry.output
        for g in range(groups):
            if not np.array_equal(stack[g * per_trial:(g + 1) * per_trial], reference):
                return ("stack", stack)
        return ("clean", reference)

    def classify(self, loadable: Loadable, images: np.ndarray) -> np.ndarray:
        """Return predicted class indices for a batch of float images."""
        logits = self.execute(loadable, images)
        return np.asarray(logits).argmax(axis=-1)

    def accuracy(self, loadable: Loadable, images: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy of the (possibly fault-injected) accelerator."""
        predictions = self.classify(loadable, images)
        return float((predictions == np.asarray(labels)).mean())

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def timing_report(self, loadable: Loadable, timing_model: TimingModel | None = None) -> TimingReport:
        """Per-inference latency estimate from the cycle model."""
        timing_model = timing_model or TimingModel(geometry=self.geometry)
        return timing_model.time_model(loadable.model)
