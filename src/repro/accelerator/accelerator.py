"""The accelerator facade: executes a compiled loadable end to end.

:class:`NVDLAAccelerator` glues the datapath models together the way the
platform of Fig. 1 does: the runtime programs each operation over the CSB,
the CMAC/CACC engine (vectorised or scalar reference) produces raw
accumulators for conv/FC layers with the currently armed fault injection
configuration applied, the SDP adds bias / requantises / applies ReLU and
elementwise additions, and the PDP performs pooling.  The final classifier
logits are returned as raw int32 accumulators.
"""

from __future__ import annotations

import numpy as np

from repro.accelerator.csb import ConfigSpaceBus
from repro.accelerator.engine import CleanAccumulatorCache, VectorisedEngine
from repro.accelerator.geometry import ArrayGeometry, PAPER_GEOMETRY
from repro.accelerator.pdp import PDP
from repro.accelerator.reference import ScalarReferenceEngine
from repro.accelerator.sdp import SDP
from repro.accelerator.timing import TimingModel, TimingReport
from repro.compiler.loadable import Loadable
from repro.compiler.ops import ConvOp, EltwiseAddOp, FullyConnectedOp, GlobalAvgPoolOp, PoolOp
from repro.faults.injector import InjectionConfig
from repro.faults.registers import FaultInjectionRegisterFile
from repro.faults.sites import FaultUniverse
from repro.quant.qlayers import QAdd, QConv, QGlobalAvgPool, QLinear, QMaxPool


class NVDLAAccelerator:
    """Behavioural model of the fault-injection-capable NVDLA accelerator.

    Parameters
    ----------
    geometry:
        MAC-array shape (8x8 in the paper).
    engine:
        ``"vectorised"`` (default, fast) or ``"scalar"`` (literal reference,
        only practical for tiny layers).
    seed:
        Seed for fault models that need randomness (transient pulses).
    cache_entries:
        Size of the vectorised engine's clean-accumulator cache (0 disables
        it).  Campaigns that re-run a frozen image batch under many fault
        configurations reuse each layer's im2col buffer and clean GEMM and
        pay only the correction-term cost; results are bit-identical either
        way.  Ignored by the scalar reference engine.
    """

    def __init__(
        self,
        geometry: ArrayGeometry = PAPER_GEOMETRY,
        engine: str = "vectorised",
        seed: int = 0,
        cache_entries: int = 0,
    ):
        self.geometry = geometry
        rng = np.random.default_rng(seed)
        if engine == "vectorised":
            cache = CleanAccumulatorCache(cache_entries) if cache_entries > 0 else None
            self.engine = VectorisedEngine(geometry, rng=rng, clean_cache=cache)
        elif engine == "scalar":
            self.engine = ScalarReferenceEngine(geometry, rng=rng)
        else:
            raise ValueError(f"unknown engine {engine!r}; use 'vectorised' or 'scalar'")
        self.engine_name = engine
        self.sdp = SDP()
        self.pdp = PDP()
        self.csb = ConfigSpaceBus()
        self.fi_registers = FaultInjectionRegisterFile(
            FaultUniverse(geometry.num_macs, geometry.muls_per_mac)
        )
        self._injection = InjectionConfig.fault_free()

    # ------------------------------------------------------------------
    # Fault injection control
    # ------------------------------------------------------------------
    def set_injection_config(self, config: InjectionConfig | None) -> None:
        """Arm a fault-injection configuration for subsequent inferences.

        Uniform constant-override configurations are additionally written to
        the AXI register-file model, so the control path stays faithful to
        the platform; mixed or value-dependent configurations bypass the
        register encoding (the paper notes such models require modifying the
        injector RTL).
        """
        self._injection = config or InjectionConfig.fault_free()
        try:
            self.fi_registers.program_config(self._injection)
        except ValueError:
            # Not representable on the register map (mixed models); the
            # emulator still honours the configuration directly.
            self.fi_registers.reset()

    def clear_faults(self) -> None:
        self.set_injection_config(InjectionConfig.fault_free())

    @property
    def injection_config(self) -> InjectionConfig:
        return self._injection

    # ------------------------------------------------------------------
    # Clean-accumulator cache lifecycle
    # ------------------------------------------------------------------
    @property
    def clean_cache(self) -> CleanAccumulatorCache | None:
        """The engine's clean-accumulator cache, if one is armed."""
        return getattr(self.engine, "clean_cache", None)

    def reset_caches(self) -> None:
        """Drop cached clean accumulators (e.g. between unrelated campaigns)."""
        cache = self.clean_cache
        if cache is not None:
            cache.clear()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        loadable: Loadable,
        images: np.ndarray,
        return_activations: bool = False,
    ):
        """Run inference on a batch of float images.

        The input is quantised with the loadable's input scale (the runtime
        does this on the ARM cores in the real platform), every op of the
        execution plan is programmed and executed in order, and the raw
        int32/int64 logits of the final layer are returned (shape
        ``(N, num_classes)``).
        """
        model = loadable.model
        qinput = model.input_node
        activations: dict[str, np.ndarray] = {qinput.name: qinput.quantize(images)}
        self.csb.reset()

        for op in loadable.ops:
            node = model.node(op.name)
            inputs = [activations[src] for src in op.inputs]

            if isinstance(op, ConvOp):
                assert isinstance(node, QConv)
                self.csb.program_operation(
                    op.name,
                    {
                        "D_DATAIN_CHANNEL": node.in_channels,
                        "D_DATAOUT_CHANNEL": node.out_channels,
                        "D_KERNEL_SIZE": node.kernel_size,
                        "D_STRIDE": node.stride,
                        "D_PAD": node.padding,
                    },
                )
                self.csb.ring_doorbell()
                acc = self.engine.conv_accumulate(inputs[0], node, self._injection)
                activations[op.name] = self.sdp.conv_post(acc, node, channel_axis=1)

            elif isinstance(op, FullyConnectedOp):
                assert isinstance(node, QLinear)
                self.csb.program_operation(
                    op.name,
                    {"D_IN_FEATURES": node.in_features, "D_OUT_FEATURES": node.out_features},
                )
                self.csb.ring_doorbell()
                acc = self.engine.linear_accumulate(inputs[0], node, self._injection)
                activations[op.name] = self.sdp.conv_post(acc, node, channel_axis=1)

            elif isinstance(op, PoolOp):
                assert isinstance(node, QMaxPool)
                self.csb.program_operation(
                    op.name, {"D_POOL_KERNEL": op.kernel, "D_POOL_STRIDE": op.stride}
                )
                self.csb.ring_doorbell()
                activations[op.name] = self.pdp.max_pool(inputs[0], node)

            elif isinstance(op, GlobalAvgPoolOp):
                assert isinstance(node, QGlobalAvgPool)
                self.csb.program_operation(op.name, {"D_POOL_SPATIAL": op.spatial_size})
                self.csb.ring_doorbell()
                activations[op.name] = self.sdp.global_average(inputs[0], node)

            elif isinstance(op, EltwiseAddOp):
                assert isinstance(node, QAdd)
                self.csb.program_operation(op.name, {"D_EW_RELU": int(op.relu)})
                self.csb.ring_doorbell()
                activations[op.name] = self.sdp.elementwise_add(inputs[0], inputs[1], node)

            else:
                raise TypeError(f"cannot execute op type {type(op).__name__}")

        logits = activations[model.output_name]
        if return_activations:
            return logits, activations
        return logits

    def classify(self, loadable: Loadable, images: np.ndarray) -> np.ndarray:
        """Return predicted class indices for a batch of float images."""
        logits = self.execute(loadable, images)
        return np.asarray(logits).argmax(axis=-1)

    def accuracy(self, loadable: Loadable, images: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy of the (possibly fault-injected) accelerator."""
        predictions = self.classify(loadable, images)
        return float((predictions == np.asarray(labels)).mean())

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def timing_report(self, loadable: Loadable, timing_model: TimingModel | None = None) -> TimingReport:
        """Per-inference latency estimate from the cycle model."""
        timing_model = timing_model or TimingModel(geometry=self.geometry)
        return timing_model.time_model(loadable.model)
