"""NVDLA-like CNN inference accelerator emulator.

The paper maps an NVDLA configuration with 8 MAC units of 8 signed 8-bit
multipliers each onto a Zynq UltraScale+ FPGA and adds fault injection logic
to every multiplier output.  This subpackage is the behavioural model of
that accelerator:

* bit-accurate datapath primitives (:mod:`multiplier`, :mod:`mac_unit`,
  :mod:`cmac`, :mod:`cacc`, :mod:`sdp`, :mod:`pdp`),
* two execution engines — a fast vectorised one (:mod:`engine`) used by the
  fault-injection campaigns and a literal scalar one (:mod:`reference`) used
  to validate it,
* a cycle-level timing model (:mod:`timing`) and an FPGA resource model
  (:mod:`resources`) reproducing the paper's Table I,
* the :class:`~repro.accelerator.accelerator.NVDLAAccelerator` facade that
  executes a compiled :class:`~repro.compiler.loadable.Loadable`.
"""

from repro.accelerator.geometry import ArrayGeometry, PAPER_GEOMETRY
from repro.accelerator.multiplier import Int8Multiplier
from repro.accelerator.mac_unit import MACUnit
from repro.accelerator.cmac import CMACArray
from repro.accelerator.cacc import Accumulator
from repro.accelerator.sdp import SDP
from repro.accelerator.pdp import PDP
from repro.accelerator.engine import VectorisedEngine
from repro.accelerator.reference import ScalarReferenceEngine
from repro.accelerator.timing import TimingModel, TimingReport
from repro.accelerator.resources import ResourceModel, ResourceReport, FIVariant
from repro.accelerator.accelerator import NVDLAAccelerator

__all__ = [
    "ArrayGeometry",
    "PAPER_GEOMETRY",
    "Int8Multiplier",
    "MACUnit",
    "CMACArray",
    "Accumulator",
    "SDP",
    "PDP",
    "VectorisedEngine",
    "ScalarReferenceEngine",
    "TimingModel",
    "TimingReport",
    "ResourceModel",
    "ResourceReport",
    "FIVariant",
    "NVDLAAccelerator",
]
