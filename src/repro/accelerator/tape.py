"""The clean-activation tape: delta-propagation state for fault trials.

A fault-injection campaign evaluates one *frozen* image batch under many
injection configurations.  Every trial's forward pass is therefore a small
perturbation of one fully known computation — the fault-free ("clean")
forward that established the baseline accuracy.  The
:class:`CleanForwardTape` records that clean computation once per
(platform, batch chunk): for every op of the execution plan it stores the
clean input activations, the clean output activation and — for conv/FC
layers — the im2col buffer and the raw clean accumulator.

With the tape armed, a trial does **delta propagation** instead of a full
re-execution:

* a conv/FC layer whose input still equals the clean input skips im2col and
  the GEMM entirely; the faulty accumulator is ``taped clean accumulator +
  correction term`` (the correction is the only per-trial work);
* a non-GEMM op (pool, residual add, global average) whose inputs equal the
  clean inputs is skipped outright — its output *is* the taped output;
* an op whose output comes out byte-identical to the taped clean output
  (a masked fault) hands the *taped object* downstream, so everything after
  the re-convergence point is skipped by pointer identity alone.

Only the *suffix* of the network that actually diverges from the clean
forward is ever re-executed, and because values are substituted strictly
under byte equality the trial logits are bit-identical to a full forward by
construction (the property-test suite certifies this for every fault-model
family).

The tape generalises the PR 2 ``CleanAccumulatorCache``: where the cache
keyed clean GEMM results by an SHA-1 content digest (paying a hash of every
layer input on every trial), the tape is keyed by the evaluation loop's
chunk coordinates and verified once per chunk with a single memcmp of the
quantised input, after which hits are pointer-identity checks.  Memory is
bounded by a byte budget (:attr:`CleanForwardTape.max_bytes`): when the
clean pass records more than fits, the least recently used chunk segments
are dropped and trials on those chunks fall back to full re-execution —
partial reuse, never unbounded memory.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np


def _readonly(array: np.ndarray) -> np.ndarray:
    """Mark an array immutable so taped state can be shared across trials.

    A view is returned when the array is already a base array; flags are set
    on the object itself otherwise.  Either way, accidental in-place writes
    through the taped reference raise instead of corrupting future trials.
    """
    view = array.view()
    view.flags.writeable = False
    return view


def arrays_match(a: np.ndarray, b: np.ndarray) -> bool:
    """True when two activations are interchangeable (identity or bytes).

    Pointer identity is the fast path: taped outputs are propagated as the
    *same objects* through a trial's skipped prefix, so most checks succeed
    without touching the data.  The byte comparison backstop keeps the tape
    correct for callers that rebuild equal arrays (e.g. re-quantising the
    same image chunk).
    """
    if a is b:
        return True
    if a.shape != b.shape or a.dtype != b.dtype:
        return False
    return bool(np.array_equal(a, b))


@dataclass
class TapeOpEntry:
    """Clean record of one op in one chunk segment.

    ``cols`` and ``acc`` are only present for conv/FC ops: the int8 im2col
    buffer and the raw (unsaturated) int64 clean accumulator, exactly the
    pair the PR 2 cache held.  ``inputs`` and ``output`` are the int8
    activations around the op (the output of a final classifier layer may
    be int64 logits).
    """

    inputs: tuple[np.ndarray, ...]
    output: np.ndarray
    cols: np.ndarray | None = None
    acc: np.ndarray | None = None


class TapeSegment:
    """The clean forward of one evaluation-batch chunk, op by op."""

    def __init__(self, chunk_key: tuple, qinput: np.ndarray):
        #: (start, length) coordinates of the chunk in the evaluation loop.
        self.chunk_key = chunk_key
        #: Quantised int8 input of the chunk; trials verify their own
        #: quantised input against it (one memcmp) before trusting the
        #: segment, so keying can never produce a wrong result.
        self.qinput = _readonly(qinput)
        self._ops: dict[str, TapeOpEntry] = {}
        #: One read-only view per *distinct* recorded activation, keyed by
        #: the id of the array the clean pass produced.  Interning is what
        #: makes replay identity checks work: op k's taped output and op
        #: k+1's taped input are the SAME object, so a replayed prefix that
        #: propagates taped outputs matches downstream inputs by pointer.
        self._views: dict[int, np.ndarray] = {id(qinput): self.qinput}
        #: GEMM parts stashed by the engine mid-op (the engine sees cols and
        #: the raw accumulator; the accelerator sees inputs and the post-SDP
        #: output — :meth:`record` joins the two halves).
        self._stash: dict[str, tuple[np.ndarray, np.ndarray]] = {}

    def _intern(self, array: np.ndarray) -> np.ndarray:
        view = self._views.get(id(array))
        if view is None:
            view = _readonly(array)
            self._views[id(array)] = view
        return view

    def stash_gemm(self, name: str, cols: np.ndarray, acc: np.ndarray) -> None:
        """Deposit a conv/FC op's clean GEMM parts for the pending record."""
        self._stash[name] = (cols, acc)

    def record(
        self,
        name: str,
        inputs: tuple[np.ndarray, ...],
        output: np.ndarray,
    ) -> None:
        cols, acc = self._stash.pop(name, (None, None))
        self._ops[name] = TapeOpEntry(
            inputs=tuple(self._intern(x) for x in inputs),
            output=self._intern(output),
            cols=None if cols is None else _readonly(cols),
            acc=None if acc is None else _readonly(acc),
        )

    def entry(self, name: str) -> TapeOpEntry | None:
        return self._ops.get(name)

    def __len__(self) -> int:
        return len(self._ops)

    @property
    def nbytes(self) -> int:
        """Resident payload bytes, counting each distinct activation once.

        Consecutive ops share activation buffers (op k's output is op
        k+1's input); summing per-entry would double-charge them and make
        the LRU evict at half the configured budget.
        """
        total = sum(view.nbytes for view in self._views.values())
        for entry in self._ops.values():
            if entry.cols is not None:
                total += entry.cols.nbytes
            if entry.acc is not None:
                total += entry.acc.nbytes
        return total


class CleanForwardTape:
    """LRU store of :class:`TapeSegment` objects under one byte budget.

    Lifecycle (driven by the platform):

    1. :meth:`start_recording` — the fault-free baseline pass is about to
       run; existing segments are dropped.
    2. the accelerator records one segment per batch chunk as the clean
       pass executes (:meth:`begin_segment` / :meth:`commit_segment`);
    3. :meth:`finish_recording` — the tape freezes; campaign trials only
       ever *read* it (:meth:`segment_for`), so a trial's one-shot faulty
       activations can never pollute it.
    """

    #: Default ceiling on taped payload bytes across all segments.
    DEFAULT_MAX_BYTES = 256 << 20

    def __init__(self, max_bytes: int | None = None):
        self.max_bytes = self.DEFAULT_MAX_BYTES if max_bytes is None else max_bytes
        if self.max_bytes <= 0:
            raise ValueError("tape byte budget must be positive (use tape=None to disable)")
        self._segments: OrderedDict[tuple, TapeSegment] = OrderedDict()
        self._bytes = 0
        self.recording = False
        self.hits = 0
        self.misses = 0
        #: Layer-level counters maintained by the engine: GEMMs served from
        #: the tape vs recomputed because the trial diverged upstream.
        self.layer_hits = 0
        self.layer_misses = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def start_recording(self) -> None:
        self.clear()
        self.recording = True

    def finish_recording(self) -> None:
        self.recording = False

    def begin_segment(self, chunk_key: tuple, qinput: np.ndarray) -> TapeSegment:
        """Open a fresh segment for one chunk of the clean pass."""
        if not self.recording:
            raise RuntimeError("tape is not recording; call start_recording() first")
        return TapeSegment(chunk_key, qinput)

    def commit_segment(self, segment: TapeSegment) -> None:
        """Insert a fully recorded segment, evicting LRU ones over budget.

        A single segment larger than the whole budget is discarded (keeping
        it would evict every other chunk for one oversized entry) — the
        affected chunk simply re-executes in full during trials.
        """
        nbytes = segment.nbytes
        if nbytes > self.max_bytes:
            return
        previous = self._segments.pop(segment.chunk_key, None)
        if previous is not None:
            self._bytes -= previous.nbytes
        self._segments[segment.chunk_key] = segment
        self._bytes += nbytes
        while self._bytes > self.max_bytes and len(self._segments) > 1:
            _, evicted = self._segments.popitem(last=False)
            self._bytes -= evicted.nbytes

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def segment_for(self, chunk_key: tuple | None, qinput: np.ndarray) -> TapeSegment | None:
        """The verified segment for a chunk, or ``None`` (full re-execution).

        The caller's freshly quantised input must match the recorded one —
        this is what makes the chunk key a pure performance hint: a stale
        key (different dataset, different slicing) degrades to a miss
        instead of ever replaying the wrong clean forward.
        """
        if chunk_key is None:
            return None
        segment = self._segments.get(chunk_key)
        if segment is None or not arrays_match(qinput, segment.qinput):
            self.misses += 1
            return None
        self._segments.move_to_end(chunk_key)
        self.hits += 1
        return segment

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def clear(self) -> None:
        self._segments.clear()
        self._bytes = 0
        self.recording = False
        self.hits = 0
        self.misses = 0
        self.layer_hits = 0
        self.layer_misses = 0

    def __len__(self) -> int:
        return len(self._segments)

    @property
    def nbytes(self) -> int:
        return self._bytes

    def max_accumulator_bytes_per_sample(self) -> int | None:
        """Largest per-sample accumulator footprint across taped layers.

        The fused multi-trial path uses this to cap stack sizes: stacked
        intermediates beyond the cache hierarchy cost more than the
        dispatch overhead fusing saves.  ``None`` when nothing is taped.
        """
        best = 0
        for segment in self._segments.values():
            samples = max(1, segment.qinput.shape[0])
            for entry in segment._ops.values():
                if entry.acc is not None:
                    best = max(best, entry.acc.nbytes // samples)
        return best or None

    def stats(self) -> dict[str, int | float]:
        total = self.layer_hits + self.layer_misses
        return {
            "segments": len(self),
            "bytes": self._bytes,
            "segment_hits": self.hits,
            "segment_misses": self.misses,
            "layer_hits": self.layer_hits,
            "layer_misses": self.layer_misses,
            "layer_hit_rate": (self.layer_hits / total) if total else 0.0,
            "recording": self.recording,
        }
