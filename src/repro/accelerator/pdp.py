"""The PDP (planar data processor): pooling on int8 feature maps.

Max pooling on quantised data is order-preserving and therefore exact;
average pooling sums in a wide register and divides via the SDP-style
requantisation handled by :class:`~repro.accelerator.sdp.SDP`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import conv_output_size
from repro.quant.qlayers import QMaxPool
from repro.quant.qscheme import INT8_MIN


class PDP:
    """Stateless pooling engine for int8 NCHW tensors."""

    def max_pool(self, x: np.ndarray, node: QMaxPool) -> np.ndarray:
        """Max pooling with the node's kernel/stride/padding."""
        return max_pool_int8(x, node.kernel, node.stride, node.padding)


def max_pool_int8(x: np.ndarray, kernel: int, stride: int, padding: int = 0) -> np.ndarray:
    """Max pooling over int8 NCHW input; padding uses the int8 minimum."""
    if x.dtype != np.int8:
        raise TypeError(f"max_pool_int8 expects int8 input, got {x.dtype}")
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    if padding > 0:
        x = np.pad(
            x,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
            constant_values=INT8_MIN,
        )
    out = np.full((n, c, out_h, out_w), INT8_MIN, dtype=np.int8)
    for ky in range(kernel):
        y_max = ky + stride * out_h
        for kx in range(kernel):
            x_max = kx + stride * out_w
            window = x[:, :, ky:y_max:stride, kx:x_max:stride]
            out = np.maximum(out, window)
    return out
