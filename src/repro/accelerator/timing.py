"""Cycle-level timing model of the emulated accelerator.

The paper reports a 4.59 ms ResNet-18 inference at 187.5 MHz, unchanged by
the fault-injection logic (the injectors are pure combinational muxes on the
product buses and add no pipeline stages).  This model derives per-layer and
per-inference latency from the execution plan:

* **compute cycles** — one atomic operation per cycle: for a convolution,
  ``out_h * out_w * channel_groups * K * K * kernel_groups`` cycles;
* **weight-load cycles** — weights stream into the convolution buffer over a
  bus of ``memory_bytes_per_cycle`` bytes per cycle;
* **activation-traffic cycles** — input/output feature maps move over the
  same bus (double-buffering overlaps most of it; the ``memory_overlap``
  factor controls how much remains exposed);
* **per-layer overhead** — register programming, pipeline fill and drain.

The constants are calibrated so that the *ordering and ratios* of the
paper's Table I are reproduced; absolute values are documented in
EXPERIMENTS.md as model outputs, not silicon measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accelerator.geometry import ArrayGeometry, PAPER_GEOMETRY
from repro.quant.qlayers import (
    QAdd,
    QConv,
    QGlobalAvgPool,
    QInput,
    QLinear,
    QMaxPool,
    QuantizedModel,
)
from repro.quant.shape_infer import infer_quantized_shapes

#: Clock frequency of the accelerator fabric in the paper's platform.
PAPER_CLOCK_HZ = 187.5e6


@dataclass(frozen=True)
class LayerTiming:
    """Cycle breakdown of one executed operation."""

    name: str
    op_type: str
    compute_cycles: int
    memory_cycles: int
    overhead_cycles: int

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.memory_cycles + self.overhead_cycles


@dataclass
class TimingReport:
    """Latency report of one inference."""

    layers: list[LayerTiming] = field(default_factory=list)
    clock_hz: float = PAPER_CLOCK_HZ

    @property
    def total_cycles(self) -> int:
        return sum(layer.total_cycles for layer in self.layers)

    @property
    def latency_seconds(self) -> float:
        return self.total_cycles / self.clock_hz

    @property
    def latency_ms(self) -> float:
        return self.latency_seconds * 1e3

    @property
    def inferences_per_second(self) -> float:
        return 1.0 / self.latency_seconds if self.total_cycles else float("inf")

    def compute_utilisation(self) -> float:
        """Fraction of cycles spent in atomic operations (vs memory/overhead)."""
        total = self.total_cycles
        if total == 0:
            return 0.0
        return sum(layer.compute_cycles for layer in self.layers) / total


@dataclass
class TimingModel:
    """Analytic cycle model parameterised by the array geometry.

    Parameters
    ----------
    geometry:
        MAC-array shape; the paper's 8x8 array by default.
    clock_hz:
        Fabric clock.
    memory_bytes_per_cycle:
        Effective bytes per cycle of the weight/feature DMA path.
    memory_overlap:
        Fraction of memory traffic hidden behind computation by
        double-buffering (0 = fully exposed, 1 = fully hidden).
    layer_overhead_cycles:
        Fixed per-operation cost: CSB programming, pipeline fill/drain and
        the runtime's submission latency, expressed in fabric cycles.
    """

    geometry: ArrayGeometry = PAPER_GEOMETRY
    clock_hz: float = PAPER_CLOCK_HZ
    memory_bytes_per_cycle: float = 8.0
    memory_overlap: float = 0.7
    layer_overhead_cycles: int = 2500
    fault_injection_enabled: bool = False

    def conv_timing(self, node: QConv, out_h: int, out_w: int) -> LayerTiming:
        """Timing of one convolution layer."""
        g = self.geometry
        atomic_ops = (
            out_h
            * out_w
            * g.channel_groups(node.in_channels)
            * node.kernel_size
            * node.kernel_size
            * g.kernel_groups(node.out_channels)
        )
        weight_traffic = node.weight.size + node.bias.size * 4
        activation_traffic = (
            node.in_channels * out_h * out_w * node.stride * node.stride
            + node.out_channels * out_h * out_w
        )
        memory_cycles = self._memory_cycles(weight_traffic + activation_traffic)
        return LayerTiming(
            name=node.name,
            op_type="Convolution",
            compute_cycles=int(atomic_ops),
            memory_cycles=memory_cycles,
            overhead_cycles=self.layer_overhead_cycles,
        )

    def linear_timing(self, node: QLinear) -> LayerTiming:
        """Timing of one fully-connected layer."""
        g = self.geometry
        atomic_ops = g.channel_groups(node.in_features) * g.kernel_groups(node.out_features)
        weight_traffic = node.weight.size + node.bias.size * 4
        memory_cycles = self._memory_cycles(weight_traffic + node.in_features + node.out_features * 4)
        return LayerTiming(
            name=node.name,
            op_type="FullyConnected",
            compute_cycles=int(atomic_ops),
            memory_cycles=memory_cycles,
            overhead_cycles=self.layer_overhead_cycles,
        )

    def pooling_timing(self, node: QMaxPool | QGlobalAvgPool, out_elements: int) -> LayerTiming:
        """Timing of a PDP pooling operation (one output element per cycle)."""
        return LayerTiming(
            name=node.name,
            op_type=type(node).__name__.lstrip("Q"),
            compute_cycles=int(out_elements),
            memory_cycles=self._memory_cycles(out_elements * 2),
            overhead_cycles=self.layer_overhead_cycles // 2,
        )

    def eltwise_timing(self, node: QAdd, elements: int) -> LayerTiming:
        """Timing of an SDP elementwise addition (residual join)."""
        return LayerTiming(
            name=node.name,
            op_type="ElementwiseAdd",
            compute_cycles=int(elements),
            memory_cycles=self._memory_cycles(elements * 3),
            overhead_cycles=self.layer_overhead_cycles // 2,
        )

    def _memory_cycles(self, num_bytes: float) -> int:
        exposed = (1.0 - self.memory_overlap) * num_bytes / self.memory_bytes_per_cycle
        return int(round(exposed))

    # ------------------------------------------------------------------
    # Whole-model timing
    # ------------------------------------------------------------------
    def time_model(self, model: QuantizedModel) -> TimingReport:
        """Latency report of one inference of a quantised model.

        The fault-injection configuration does not appear here on purpose:
        the injectors are combinational and add no cycles, which is exactly
        the paper's observation that latency is identical with and without
        FI support.
        """
        shapes = infer_quantized_shapes(model)
        report = TimingReport(clock_hz=self.clock_hz)
        for node in model.nodes:
            if isinstance(node, QInput):
                continue
            if isinstance(node, QConv):
                _, out_h, out_w = shapes[node.name]
                report.layers.append(self.conv_timing(node, out_h, out_w))
            elif isinstance(node, QLinear):
                report.layers.append(self.linear_timing(node))
            elif isinstance(node, (QMaxPool, QGlobalAvgPool)):
                shape = shapes[node.name]
                elements = 1
                for dim in shape:
                    elements *= dim
                report.layers.append(self.pooling_timing(node, elements))
            elif isinstance(node, QAdd):
                shape = shapes[node.name]
                elements = 1
                for dim in shape:
                    elements *= dim
                report.layers.append(self.eltwise_timing(node, elements))
            else:
                raise TypeError(f"unsupported node type {type(node).__name__}")
        return report
