"""The scalar reference engine: a literal cycle-by-cycle MAC-array model.

This engine executes a convolution exactly as the hardware schedule does —
one atomic operation per (output position, kernel position, channel group,
kernel group), each atomic operation driving all 64 multiplier objects of a
:class:`~repro.accelerator.cmac.CMACArray` — so faults are applied by the
same per-multiplier :class:`~repro.faults.injector.FaultInjector` logic the
paper adds to the RTL.

It is orders of magnitude slower than the vectorised engine and exists for
one purpose: proving, in the test suite and in the engine-ablation
benchmark, that the vectorised engine produces bit-identical accumulators on
every layer shape and fault configuration it is given.
"""

from __future__ import annotations

import numpy as np

from repro.accelerator.cmac import CMACArray
from repro.accelerator.geometry import ArrayGeometry, PAPER_GEOMETRY
from repro.faults.injector import InjectionConfig
from repro.nn.functional import conv_output_size
from repro.quant.qlayers import QConv, QLinear
from repro.utils.bitops import ACCUMULATOR_WIDTH, saturate


class ScalarReferenceEngine:
    """Slow but literal per-multiplier execution of conv/FC layers."""

    def __init__(self, geometry: ArrayGeometry = PAPER_GEOMETRY, rng: np.random.Generator | None = None):
        self.geometry = geometry
        self.rng = rng or np.random.default_rng(0)
        #: Atomic operations executed by the last layer run (timing cross-check).
        self.last_atomic_ops = 0

    @staticmethod
    def _corrupt_staged(
        array: np.ndarray, flips: list[tuple[int, int]], per_sample: bool
    ) -> np.ndarray:
        """Flip stored bits of a staged int8 operand buffer, byte by byte.

        This is the cycle-accurate corruption path: the CBUF holds the int8
        operand surface the schedule reads, and each armed (byte, bit) site
        is toggled on a copy with plain Python integer arithmetic on the
        raw two's-complement byte.  Offsets wrap modulo the corrupted
        region — the whole surface for weights, each sample's staging for
        activations (the surface is re-filled per sample).  Independently
        mirrors the vectorised engine's uint8-view XOR; the differential
        suite certifies the two bit-identical.
        """
        if array.dtype != np.int8:
            raise TypeError(f"memory corruption expects int8 operands, got {array.dtype}")
        staged = array.copy()
        regions = staged if per_sample else staged[None]
        for region in regions:
            flat = region.reshape(-1)
            size = flat.size
            for offset, bit in flips:
                index = offset % size
                raw = int(flat[index]) & 0xFF
                raw ^= 1 << bit
                flat[index] = raw - 256 if raw >= 128 else raw
        return staged

    def conv_accumulate(
        self,
        x_q: np.ndarray,
        node: QConv,
        config: InjectionConfig | None = None,
        exec_index: int = 0,
    ) -> np.ndarray:
        """Raw accumulator of a convolution, computed one atomic op at a time.

        ``exec_index`` is the op's per-inference GEMM execution index, the
        clock memory-resident faults' dwell windows are defined on.
        """
        config = config or InjectionConfig.fault_free()
        weight_flips, activation_flips = config.active_memory_flips(exec_index)
        cmac = CMACArray(self.geometry, rng=self.rng)
        cmac.apply_injection_config(config.datapath_config())

        if activation_flips:
            x_q = self._corrupt_staged(x_q, activation_flips, per_sample=True)
        weight_src = node.weight
        if weight_flips:
            weight_src = self._corrupt_staged(weight_src, weight_flips, per_sample=False)

        n, in_channels, h, w = x_q.shape
        out_channels = node.out_channels
        k = node.kernel_size
        stride, padding = node.stride, node.padding
        out_h = conv_output_size(h, k, stride, padding)
        out_w = conv_output_size(w, k, stride, padding)

        atomic_c = self.geometry.atomic_c
        atomic_k = self.geometry.atomic_k
        channel_groups = self.geometry.channel_groups(in_channels)
        kernel_groups = self.geometry.kernel_groups(out_channels)

        x_pad = np.pad(
            x_q.astype(np.int64),
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
        )
        weight = weight_src.astype(np.int64)

        acc = np.zeros((n, out_channels, out_h, out_w), dtype=np.int64)
        self.last_atomic_ops = 0

        for sample in range(n):
            for oy in range(out_h):
                for ox in range(out_w):
                    for kg in range(kernel_groups):
                        oc_base = kg * atomic_k
                        partial = np.zeros(atomic_k, dtype=np.int64)
                        for cg in range(channel_groups):
                            ic_base = cg * atomic_c
                            for ky in range(k):
                                for kx in range(k):
                                    iy = oy * stride + ky
                                    ix = ox * stride + kx
                                    activations = [
                                        int(x_pad[sample, ic_base + lane, iy, ix])
                                        if ic_base + lane < in_channels
                                        else 0
                                        for lane in range(atomic_c)
                                    ]
                                    weights_per_kernel = []
                                    for mac in range(atomic_k):
                                        oc = oc_base + mac
                                        if oc < out_channels:
                                            weights_per_kernel.append(
                                                [
                                                    int(weight[oc, ic_base + lane, ky, kx])
                                                    if ic_base + lane < in_channels
                                                    else 0
                                                    for lane in range(atomic_c)
                                                ]
                                            )
                                        else:
                                            weights_per_kernel.append([0] * atomic_c)
                                    sums = cmac.atomic_op(activations, weights_per_kernel)
                                    partial += np.asarray(sums, dtype=np.int64)
                                    self.last_atomic_ops += 1
                        for mac in range(atomic_k):
                            oc = oc_base + mac
                            if oc < out_channels:
                                acc[sample, oc, oy, ox] = saturate(
                                    acc[sample, oc, oy, ox] + partial[mac], ACCUMULATOR_WIDTH
                                )
        return acc

    def linear_accumulate(
        self,
        x_q: np.ndarray,
        node: QLinear,
        config: InjectionConfig | None = None,
        exec_index: int = 0,
    ) -> np.ndarray:
        """Raw accumulator of a fully-connected layer via atomic operations."""
        config = config or InjectionConfig.fault_free()
        weight_flips, activation_flips = config.active_memory_flips(exec_index)
        cmac = CMACArray(self.geometry, rng=self.rng)
        cmac.apply_injection_config(config.datapath_config())

        if activation_flips:
            x_q = self._corrupt_staged(x_q, activation_flips, per_sample=True)
        weight_src = node.weight
        if weight_flips:
            weight_src = self._corrupt_staged(weight_src, weight_flips, per_sample=False)

        n, in_features = x_q.shape
        out_features = node.out_features
        atomic_c = self.geometry.atomic_c
        atomic_k = self.geometry.atomic_k
        channel_groups = self.geometry.channel_groups(in_features)
        kernel_groups = self.geometry.kernel_groups(out_features)

        x_int = x_q.astype(np.int64)
        weight = weight_src.astype(np.int64)
        acc = np.zeros((n, out_features), dtype=np.int64)
        self.last_atomic_ops = 0

        for sample in range(n):
            for kg in range(kernel_groups):
                oc_base = kg * atomic_k
                partial = np.zeros(atomic_k, dtype=np.int64)
                for cg in range(channel_groups):
                    ic_base = cg * atomic_c
                    activations = [
                        int(x_int[sample, ic_base + lane]) if ic_base + lane < in_features else 0
                        for lane in range(atomic_c)
                    ]
                    weights_per_kernel = []
                    for mac in range(atomic_k):
                        oc = oc_base + mac
                        if oc < out_features:
                            weights_per_kernel.append(
                                [
                                    int(weight[oc, ic_base + lane])
                                    if ic_base + lane < in_features
                                    else 0
                                    for lane in range(atomic_c)
                                ]
                            )
                        else:
                            weights_per_kernel.append([0] * atomic_c)
                    sums = cmac.atomic_op(activations, weights_per_kernel)
                    partial += np.asarray(sums, dtype=np.int64)
                    self.last_atomic_ops += 1
                for mac in range(atomic_k):
                    oc = oc_base + mac
                    if oc < out_features:
                        acc[sample, oc] = saturate(acc[sample, oc] + partial[mac], ACCUMULATOR_WIDTH)
        return acc
