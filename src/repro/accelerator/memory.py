"""Byte-level surface model of the accelerator's external memory traffic.

The emulated platform keeps feature maps and weights in DRAM (the Zynq PS
DDR) and streams them through the convolution buffer.  For the purposes of
this library the memory model answers two questions:

* how many bytes does each layer move (feeds the timing model's bandwidth
  term), and
* do the surfaces of an execution plan fit the modelled DRAM partition
  (sanity check mirroring the platform's fixed CMA allocation).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Surface:
    """One contiguous tensor allocation in accelerator memory.

    ``num_bytes`` is the *requested* (payload) size — the number the
    per-layer byte-traffic accounting must see; ``padded_bytes`` is the
    alignment-padded footprint the allocator actually reserves, and is what
    :attr:`end` and the capacity/cursor math are based on.
    """

    name: str
    address: int
    num_bytes: int
    padded_bytes: int = 0

    def __post_init__(self) -> None:
        if self.padded_bytes < self.num_bytes:
            object.__setattr__(self, "padded_bytes", self.num_bytes)

    @property
    def end(self) -> int:
        return self.address + self.padded_bytes


class AllocationError(RuntimeError):
    """Raised when an execution plan does not fit in the modelled memory."""


@dataclass
class MemoryModel:
    """A bump allocator over a fixed-size DRAM partition.

    Parameters
    ----------
    capacity_bytes:
        Size of the partition reserved for the accelerator (the FPGA mapping
        used by the paper reserves a 256 MiB CMA region for the NVDLA
        runtime).
    alignment:
        Allocation alignment in bytes (DMA engines require 32-byte aligned
        surfaces).
    """

    capacity_bytes: int = 256 * 1024 * 1024
    alignment: int = 32
    surfaces: dict[str, Surface] = field(default_factory=dict)
    _cursor: int = 0

    def allocate(self, name: str, num_bytes: int) -> Surface:
        """Allocate a named surface; raises :class:`AllocationError` when full."""
        if num_bytes <= 0:
            raise ValueError(f"surface {name!r} must have positive size")
        if name in self.surfaces:
            raise ValueError(f"surface {name!r} already allocated")
        aligned = ((num_bytes + self.alignment - 1) // self.alignment) * self.alignment
        if self._cursor + aligned > self.capacity_bytes:
            raise AllocationError(
                f"allocating {aligned} bytes for {name!r} exceeds the "
                f"{self.capacity_bytes}-byte partition (used {self._cursor})"
            )
        surface = Surface(
            name=name, address=self._cursor, num_bytes=num_bytes, padded_bytes=aligned
        )
        self.surfaces[name] = surface
        self._cursor += aligned
        return surface

    def release_all(self) -> None:
        self.surfaces.clear()
        self._cursor = 0

    @property
    def used_bytes(self) -> int:
        return self._cursor

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._cursor

    def __contains__(self, name: str) -> bool:
        return name in self.surfaces


def feature_map_bytes(channels: int, height: int, width: int, bytes_per_element: int = 1) -> int:
    """Size of an int8 NCHW feature-map surface for batch 1."""
    return channels * height * width * bytes_per_element


def weight_bytes(out_channels: int, in_channels: int, kernel: int, bytes_per_element: int = 1) -> int:
    """Size of an int8 convolution weight surface."""
    return out_channels * in_channels * kernel * kernel * bytes_per_element
