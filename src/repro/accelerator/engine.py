"""The vectorised execution engine of the MAC array.

This engine computes, for a convolution or fully-connected layer, exactly
the accumulator values the hardware MAC array would produce — including the
effect of fault injection at individual multipliers — but it does so with
numpy linear algebra instead of looping over cycles.

Lane mapping
------------
The compiler tiles a convolution onto the array in NVDLA fashion: input
channels are processed in groups of ``atomic_c`` and output channels in
groups of ``atomic_k``.  Inside a group, input channel ``ic`` is assigned to
multiplier lane ``ic % atomic_c`` and output channel ``oc`` to MAC unit
``oc % atomic_k``.  A persistent fault at multiplier ``(k, m)`` therefore
corrupts every product of the form

    activation[ic] * weight[oc, ic, ky, kx]    with ic % atomic_c == m,
                                                    oc % atomic_k == k,

for every kernel position and output pixel — plus the products of *padding
lanes* (channel groups padded with zeros when the channel count is not a
multiple of ``atomic_c``), because those multipliers still cycle in hardware
and a persistent override replaces their zero products too.

Fault arithmetic
----------------
For value-independent models (stuck-at, constant) the faulty accumulator is
obtained from the clean one by subtracting the true contribution of the
affected products and adding ``constant * number_of_affected_products``.
For value-dependent models (bit flips, transient pulses) the affected
products are materialised, transformed by the model and re-summed.  Both
paths are validated against the scalar reference engine in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.accelerator.cacc import saturating_accumulate
from repro.accelerator.geometry import ArrayGeometry, PAPER_GEOMETRY
from repro.faults.injector import InjectionConfig
from repro.faults.models import FaultModel
from repro.faults.sites import FaultSite
from repro.nn.functional import conv_output_size, im2col
from repro.quant.qlayers import QConv, QLinear
from repro.utils.bitops import ACCUMULATOR_WIDTH, saturate


class VectorisedEngine:
    """Fast lane-accurate engine for conv/FC layers on the MAC array."""

    def __init__(self, geometry: ArrayGeometry = PAPER_GEOMETRY, rng: np.random.Generator | None = None):
        self.geometry = geometry
        self.rng = rng or np.random.default_rng(0)

    # ------------------------------------------------------------------
    # Convolution
    # ------------------------------------------------------------------
    def conv_accumulate(
        self,
        x_q: np.ndarray,
        node: QConv,
        config: InjectionConfig | None = None,
    ) -> np.ndarray:
        """Raw accumulator of a convolution (no bias / requant), int64 NCHW."""
        if x_q.dtype != np.int8:
            raise TypeError(f"expected int8 activations, got {x_q.dtype}")
        config = config or InjectionConfig.fault_free()
        n, ic, h, w = x_q.shape
        oc, ic_w, k, _ = node.weight.shape
        if ic != ic_w:
            raise ValueError(f"{node.name}: input channels {ic} != weight channels {ic_w}")
        out_h = conv_output_size(h, k, node.stride, node.padding)
        out_w = conv_output_size(w, k, node.stride, node.padding)

        cols = im2col(x_q.astype(np.int64), k, node.stride, node.padding)  # (N, IC*K*K, P)
        w_mat = node.weight.astype(np.int64).reshape(oc, -1)  # (OC, IC*K*K)
        acc = np.einsum("or,nrp->nop", w_mat, cols, optimize=True)

        if config.enabled:
            acc = self._apply_faults_conv(acc, cols, w_mat, node, config)

        acc = saturate(acc, ACCUMULATOR_WIDTH)
        return acc.reshape(n, oc, out_h, out_w)

    def _apply_faults_conv(
        self,
        acc: np.ndarray,
        cols: np.ndarray,
        w_mat: np.ndarray,
        node: QConv,
        config: InjectionConfig,
    ) -> np.ndarray:
        oc, _ = w_mat.shape
        ic = node.in_channels
        k = node.kernel_size
        acc = acc.copy()
        for site, model in config.faults.items():
            site.validate(self.geometry.num_macs, self.geometry.muls_per_mac)
            correction = self._site_correction(
                cols, w_mat, oc, ic, k * k, site, model
            )
            if correction is None:
                continue
            oc_sel, delta = correction
            acc[:, oc_sel, :] += delta
        return acc

    def _site_correction(
        self,
        cols: np.ndarray,
        w_mat: np.ndarray,
        out_channels: int,
        in_channels: int,
        kernel_elems: int,
        site: FaultSite,
        model: FaultModel,
    ) -> tuple[list[int], np.ndarray] | None:
        """Correction term added to ``acc[:, oc_sel, :]`` for one fault site."""
        atomic_c = self.geometry.atomic_c
        atomic_k = self.geometry.atomic_k

        oc_sel = [o for o in range(out_channels) if o % atomic_k == site.mac_unit]
        if not oc_sel:
            # The MAC unit only ever processes padded (discarded) kernels.
            return None
        ic_real = [c for c in range(in_channels) if c % atomic_c == site.multiplier]
        channel_groups = self.geometry.channel_groups(in_channels)
        pad_lane_count = channel_groups - len(ic_real)
        pad_terms = pad_lane_count * kernel_elems

        rows = [c * kernel_elems + j for c in ic_real for j in range(kernel_elems)]
        n_batch, _, positions = cols.shape

        constant = model.constant_override()
        if constant is not None and not model.value_dependent:
            total_terms = len(rows) + pad_terms
            if rows:
                w_sub = w_mat[np.ix_(oc_sel, rows)]
                cols_sub = cols[:, rows, :]
                true_contrib = np.einsum("or,nrp->nop", w_sub, cols_sub, optimize=True)
            else:
                true_contrib = np.zeros((n_batch, len(oc_sel), positions), dtype=np.int64)
            delta = np.int64(constant) * total_terms - true_contrib
            return oc_sel, delta

        # Value-dependent path: materialise the affected products.
        delta = np.zeros((n_batch, len(oc_sel), positions), dtype=np.int64)
        if rows:
            w_sub = w_mat[np.ix_(oc_sel, rows)]  # (O, R)
            cols_sub = cols[:, rows, :]  # (N, R, P)
            products = w_sub[None, :, :, None] * cols_sub[:, None, :, :]  # (N, O, R, P)
            faulty = model.apply(products, self.rng)
            delta += (faulty - products).sum(axis=2)
        if pad_terms:
            pad_products = np.zeros((n_batch, len(oc_sel), pad_terms, positions), dtype=np.int64)
            pad_faulty = model.apply(pad_products, self.rng)
            delta += pad_faulty.sum(axis=2)
        return oc_sel, delta

    # ------------------------------------------------------------------
    # Fully connected
    # ------------------------------------------------------------------
    def linear_accumulate(
        self,
        x_q: np.ndarray,
        node: QLinear,
        config: InjectionConfig | None = None,
    ) -> np.ndarray:
        """Raw accumulator of a fully-connected layer, int64 of shape (N, OUT)."""
        if x_q.dtype != np.int8:
            raise TypeError(f"expected int8 activations, got {x_q.dtype}")
        config = config or InjectionConfig.fault_free()
        if x_q.ndim != 2:
            raise ValueError(f"linear input must be (N, features), got shape {x_q.shape}")
        n, in_features = x_q.shape
        out_features, in_w = node.weight.shape
        if in_features != in_w:
            raise ValueError(f"{node.name}: input features {in_features} != weight {in_w}")

        # An FC layer is a 1x1 convolution over a 1x1 feature map on this
        # datapath; reuse the convolution fault arithmetic with P == 1.
        cols = x_q.astype(np.int64).reshape(n, in_features, 1)
        w_mat = node.weight.astype(np.int64)
        acc = np.einsum("or,nrp->nop", w_mat, cols, optimize=True)

        if config.enabled:
            acc = acc.copy()
            for site, model in config.faults.items():
                site.validate(self.geometry.num_macs, self.geometry.muls_per_mac)
                correction = self._site_correction(
                    cols, w_mat, out_features, in_features, 1, site, model
                )
                if correction is None:
                    continue
                oc_sel, delta = correction
                acc[:, oc_sel, :] += delta

        acc = saturate(acc, ACCUMULATOR_WIDTH)
        return acc.reshape(n, out_features)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    def affected_fraction(self, node: QConv | QLinear, config: InjectionConfig) -> float:
        """Fraction of this layer's products that the armed faults corrupt.

        Useful for sanity-checking campaign severity: a single faulty
        multiplier in an 8x8 array corrupts 1/64 of all products.
        """
        if not config.enabled:
            return 0.0
        if isinstance(node, QConv):
            in_channels, out_channels = node.in_channels, node.out_channels
        else:
            in_channels, out_channels = node.in_features, node.out_features
        total_pairs = self.geometry.pad_channels(in_channels) * out_channels
        affected = 0
        for site in config.faults:
            oc_count = len([o for o in range(out_channels) if o % self.geometry.atomic_k == site.mac_unit])
            ic_count = self.geometry.channel_groups(in_channels)
            affected += oc_count * ic_count
        return affected / max(total_pairs, 1)
