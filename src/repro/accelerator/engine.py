"""The vectorised execution engine of the MAC array.

This engine computes, for a convolution or fully-connected layer, exactly
the accumulator values the hardware MAC array would produce — including the
effect of fault injection at individual multipliers — but it does so with
numpy linear algebra instead of looping over cycles.

Lane mapping
------------
The compiler tiles a convolution onto the array in NVDLA fashion: input
channels are processed in groups of ``atomic_c`` and output channels in
groups of ``atomic_k``.  Inside a group, input channel ``ic`` is assigned to
multiplier lane ``ic % atomic_c`` and output channel ``oc`` to MAC unit
``oc % atomic_k``.  A persistent fault at multiplier ``(k, m)`` therefore
corrupts every product of the form

    activation[ic] * weight[oc, ic, ky, kx]    with ic % atomic_c == m,
                                                    oc % atomic_k == k,

for every kernel position and output pixel — plus the products of *padding
lanes* (channel groups padded with zeros when the channel count is not a
multiple of ``atomic_c``), because those multipliers still cycle in hardware
and a persistent override replaces their zero products too.

Fault arithmetic
----------------
For value-independent models (stuck-at, constant) the faulty accumulator is
obtained from the clean one by subtracting the true contribution of the
affected products and adding ``constant * number_of_affected_products``.
For value-dependent models (bit flips, transient pulses) the affected
products are materialised, transformed by the model and re-summed.  Both
paths are validated against the scalar reference engine in the test suite.

Fast math
---------
The clean accumulator is computed by the shared exact integer GEMM core
(:mod:`repro.runtime.gemm`): im2col keeps the int8 patches narrow all the
way to the GEMM boundary and the contraction runs on BLAS float kernels
whose exactness is certified by an overflow bound — bit-identical to the
original int64 einsum, several times faster.

Because ``faulty = clean + correction``, a campaign that re-evaluates the
same frozen image batch under many injection configurations recomputes the
same clean GEMMs over and over.  :class:`CleanAccumulatorCache` memoises
``(layer, input-digest) -> (cols, clean accumulator)`` so repeat trials pay
only the correction-term cost for every layer whose input is unchanged (the
first conv layer always qualifies; deeper layers qualify whenever the armed
fault did not perturb the upstream activations).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

from repro.accelerator.geometry import ArrayGeometry, PAPER_GEOMETRY
from repro.accelerator.tape import CleanForwardTape, TapeOpEntry, TapeSegment, arrays_match
from repro.faults.injector import InjectionConfig
from repro.faults.models import FaultModel, flip_int8_bytes
from repro.faults.sites import FaultSite
from repro.nn.functional import conv_output_size, im2col
from repro.quant.qlayers import QConv, QLinear
from repro.runtime.gemm import exact_matmul
from repro.utils.bitops import ACCUMULATOR_WIDTH, saturate
from repro.utils.profiling import PROFILER


def config_fusable(config: InjectionConfig) -> bool:
    """True when a configuration can join a fused multi-trial evaluation.

    Fused evaluation computes several trials' correction terms inside one
    engine pass, so every armed model must be a pure function of its inputs
    (and, for cycle-dependent models, of the schedule's cycle indices).
    Models that consume the engine's RNG stream (``rng_free = False``, e.g.
    :class:`~repro.faults.models.TransientPulse`) would observe a different
    draw order under fusion; such trials are evaluated one at a time.
    Memory-resident models are likewise excluded: they corrupt the staged
    operand bytes (weights, activations, input DMA) that a fused pass shares
    across all trials of the group.
    """
    return all(
        getattr(model, "rng_free", False) and model.stage != "memory"
        for model in config.faults.values()
    )


class CleanAccumulatorCache:
    """LRU cache of clean per-layer GEMM results, keyed by input content.

    A key is ``(layer name, input shape, SHA-1 of the input bytes)``: two
    calls reuse an entry only when the layer sees byte-identical input, so
    cached campaigns are bit-identical to uncached ones by construction.
    Entries hold the (narrow-dtype) im2col buffer and the clean int64
    accumulator; neither is ever mutated by the engine (fault corrections
    copy before writing), so entries can be shared freely across trials.

    During a campaign only the *clean* activations recur: a fault perturbs
    every layer downstream of it, so trial-time inputs of deeper layers are
    one-shot and caching them would just pin dead memory and churn the LRU.
    The platform therefore primes the cache during the fault-free baseline
    pass and then :meth:`freeze`\\ s it — frozen lookups still hit, but
    misses no longer insert.

    Capacity is bounded both by entry count and by payload bytes
    (``max_bytes``, default 256 MB): a full-width model primes one entry of
    tens of MB per (layer, batch chunk), so an entry cap alone could pin
    GBs.  When the baseline pass primes more than fits, the LRU keeps the
    most recently primed chunks and trials hit only on those — the cache
    degrades to partial reuse, never to unbounded memory.
    """

    #: Default ceiling on cached payload bytes (cols + accumulators).
    DEFAULT_MAX_BYTES = 256 << 20

    def __init__(self, max_entries: int = 128, max_bytes: int | None = None):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1 (use cache=None to disable)")
        self.max_entries = max_entries
        #: Byte budget across all entries; at paper scale a single entry of
        #: the full-width model is tens of MB, so an entry count alone would
        #: let the cache pin GBs.  ``None`` disables the byte bound.
        self.max_bytes = self.DEFAULT_MAX_BYTES if max_bytes is None else max_bytes
        self._entries: OrderedDict[tuple, tuple[np.ndarray, np.ndarray]] = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        #: When True, misses do not insert (reads still hit).
        self.frozen = False

    def key(self, name: str, x: np.ndarray) -> tuple:
        digest = hashlib.sha1(x.tobytes()).digest()
        return (name, x.shape, digest)

    def get(self, key: tuple) -> tuple[np.ndarray, np.ndarray] | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def _evict_oldest(self) -> None:
        _, (cols, acc) = self._entries.popitem(last=False)
        self._bytes -= cols.nbytes + acc.nbytes

    def put(self, key: tuple, cols: np.ndarray, acc: np.ndarray) -> None:
        if self.frozen:
            return
        entry_bytes = cols.nbytes + acc.nbytes
        if self.max_bytes is not None and entry_bytes > self.max_bytes:
            return  # a single over-budget payload would evict everything else
        previous = self._entries.pop(key, None)
        if previous is not None:
            self._bytes -= previous[0].nbytes + previous[1].nbytes
        self._entries[key] = (cols, acc)
        self._bytes += entry_bytes
        while len(self._entries) > self.max_entries:
            self._evict_oldest()
        if self.max_bytes is not None:
            while self._bytes > self.max_bytes and len(self._entries) > 1:
                self._evict_oldest()

    def freeze(self) -> None:
        """Stop inserting on miss (campaign trials only ever *reuse*)."""
        self.frozen = True

    def thaw(self) -> None:
        """Allow inserts again (the fault-free baseline pass primes here)."""
        self.frozen = False

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Payload bytes currently held (cols + accumulators)."""
        return self._bytes

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, int | float]:
        return {
            "entries": len(self),
            "bytes": self._bytes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "frozen": self.frozen,
        }


class VectorisedEngine:
    """Fast lane-accurate engine for conv/FC layers on the MAC array."""

    def __init__(
        self,
        geometry: ArrayGeometry = PAPER_GEOMETRY,
        rng: np.random.Generator | None = None,
        clean_cache: CleanAccumulatorCache | None = None,
        tape: CleanForwardTape | None = None,
    ):
        self.geometry = geometry
        self.rng = rng or np.random.default_rng(0)
        #: Optional clean-accumulator reuse across fault trials (off for a
        #: bare engine; campaigns enable it through the platform config).
        self.clean_cache = clean_cache
        #: Optional clean-activation tape (the delta-propagation engine's
        #: generalisation of the cache); owned by the accelerator.
        self.tape = tape
        #: The tape segment of the batch chunk currently executing, set by
        #: the accelerator around each chunk.
        self.tape_segment: TapeSegment | None = None
        #: True while a chunk-keyed execution is in flight on a tape-armed
        #: platform.  A missing segment then means "tape evicted/unverified
        #: for this chunk" — the layer recomputes directly instead of
        #: falling through to the digest cache, which would SHA-1-hash and
        #: insert one-shot faulty activations on every trial.  Chunk-less
        #: (ad-hoc) executions leave this False and keep using the cache.
        self.tape_chunk_active: bool = False

    # ------------------------------------------------------------------
    # Clean GEMM (shared by conv and FC)
    # ------------------------------------------------------------------
    def _clean_accumulate(
        self, name: str, x_q: np.ndarray, w_mat: np.ndarray, make_cols,
        reusable: bool = True,
    ) -> tuple[np.ndarray, np.ndarray, bool]:
        """Return ``(cols, clean acc, acc owned)``, via the tape or cache.

        With a tape segment active the lookup is a pointer-identity check
        against the segment's recorded clean input (byte comparison as a
        backstop) — no content hashing anywhere.  A miss means the trial
        diverged upstream of this layer: the suffix is recomputed directly,
        bypassing the digest cache (hashing a one-shot faulty activation
        would be pure overhead).

        ``reusable = False`` bypasses the tape and the digest cache entirely
        (no lookup, no insert).  Both stores key on the layer *input* and
        assume the layer's weights are the compiled ones; a dwell-active
        weight-surface fault breaks that assumption — a clean input would
        falsely hit the clean accumulator — so such ops always recompute.

        The ``owned`` flag tells the caller whether the accumulator is a
        freshly computed buffer it may mutate in place (suffix GEMMs) or a
        shared tape/cache entry that fault corrections must copy first.
        """
        if not reusable:
            start = PROFILER.tick()
            cols = make_cols()
            acc = exact_matmul(w_mat, cols)
            PROFILER.tock("suffix_forward", start)
            return cols, acc, True
        tape = self.tape
        segment = self.tape_segment
        if tape is not None and segment is None and self.tape_chunk_active:
            # Tape-armed chunk whose segment was evicted or failed
            # verification: recompute the layer directly.
            tape.layer_misses += 1
            start = PROFILER.tick()
            cols = make_cols()
            acc = exact_matmul(w_mat, cols)
            PROFILER.tock("suffix_forward", start)
            return cols, acc, True
        if tape is not None and segment is not None:
            if tape.recording:
                start = PROFILER.tick()
                cols = make_cols()
                acc = exact_matmul(w_mat, cols)
                PROFILER.tock("tape_build", start)
                segment.stash_gemm(name, cols, acc)
                # The stashed buffer becomes tape state the moment the
                # accelerator records the op: treat it as shared already.
                return cols, acc, False
            entry = segment.entry(name)
            if (
                entry is not None
                and entry.acc is not None
                and arrays_match(x_q, entry.inputs[0])
            ):
                tape.layer_hits += 1
                return entry.cols, entry.acc, False
            tape.layer_misses += 1
            start = PROFILER.tick()
            cols = make_cols()
            acc = exact_matmul(w_mat, cols)
            PROFILER.tock("suffix_forward", start)
            return cols, acc, True
        cache = self.clean_cache
        if cache is None:
            cols = make_cols()
            return cols, exact_matmul(w_mat, cols), True
        key = cache.key(name, x_q)
        entry = cache.get(key)
        if entry is not None:
            return entry[0], entry[1], False
        cols = make_cols()
        acc = exact_matmul(w_mat, cols)
        cache.put(key, cols, acc)
        return cols, acc, False

    # ------------------------------------------------------------------
    # Convolution
    # ------------------------------------------------------------------
    def _staged_operands(
        self,
        x_q: np.ndarray,
        weight: np.ndarray,
        config: InjectionConfig,
        exec_index: int,
    ) -> tuple[np.ndarray, np.ndarray, InjectionConfig, bool]:
        """Apply dwell-active memory faults to the staged operand tensors.

        Returns ``(x_q, weight, datapath config, reusable)``: the (possibly
        corrupted) activation and weight tensors the GEMM must read, the
        configuration stripped of its memory faults, and whether the clean
        tape/cache may serve this op (False once the weights differ from the
        compiled ones).  Corruption is the vectorised path — an XOR on a
        uint8 view of a copy — mirroring the scalar reference engine's
        per-byte staging corruption.
        """
        if not config.enabled:
            return x_q, weight, config, True
        weight_flips, activation_flips = config.active_memory_flips(exec_index)
        datapath = config.datapath_config()
        reusable = True
        if weight_flips:
            weight = flip_int8_bytes(weight, weight_flips, per_sample=False)
            reusable = False
        if activation_flips:
            x_q = flip_int8_bytes(x_q, activation_flips, per_sample=True)
        return x_q, weight, datapath, reusable

    def conv_accumulate(
        self,
        x_q: np.ndarray,
        node: QConv,
        config: InjectionConfig | None = None,
        exec_index: int = 0,
    ) -> np.ndarray:
        """Raw accumulator of a convolution (no bias / requant), int64 NCHW.

        ``exec_index`` is the op's per-inference GEMM execution index — the
        clock that memory-resident faults' dwell windows are defined on.
        """
        if x_q.dtype != np.int8:
            raise TypeError(f"expected int8 activations, got {x_q.dtype}")
        config = config or InjectionConfig.fault_free()
        x_q, weight, config, reusable = self._staged_operands(
            x_q, node.weight, config, exec_index
        )
        n, ic, h, w = x_q.shape
        oc, ic_w, k, _ = weight.shape
        if ic != ic_w:
            raise ValueError(f"{node.name}: input channels {ic} != weight channels {ic_w}")
        out_h = conv_output_size(h, k, node.stride, node.padding)
        out_w = conv_output_size(w, k, node.stride, node.padding)

        w_mat = weight.reshape(oc, -1)  # int8, (OC, IC*K*K)
        cols, acc, owned = self._clean_accumulate(
            node.name,
            x_q,
            w_mat,
            # int8 patches, (N, IC*K*K, P) — narrow until the GEMM boundary
            lambda: im2col(x_q, k, node.stride, node.padding),
            reusable=reusable,
        )

        if config.enabled:
            acc = self._apply_faults_conv(acc, cols, w_mat, node, config, owned)
            owned = True

        acc = self._saturated(acc, owned)
        return acc.reshape(n, oc, out_h, out_w)

    @staticmethod
    def _saturated(acc: np.ndarray, owned: bool) -> np.ndarray:
        """34-bit accumulator saturation, in place when the buffer is owned."""
        return saturate(acc, ACCUMULATOR_WIDTH, out=acc if owned else None)

    def _apply_faults_conv(
        self,
        acc: np.ndarray,
        cols: np.ndarray,
        w_mat: np.ndarray,
        node: QConv,
        config: InjectionConfig,
        owned: bool = False,
    ) -> np.ndarray:
        self._validate_stage_combination(config)
        if not owned:
            # Shared tape/cache entry: corrections must not leak into it.
            acc = acc.copy()
        self._apply_config(
            acc, cols, w_mat, node.out_channels, node.in_channels,
            node.kernel_size ** 2, config,
        )
        return acc

    def _apply_config(
        self,
        acc_view: np.ndarray,
        cols: np.ndarray,
        w_mat: np.ndarray,
        out_channels: int,
        in_channels: int,
        kernel_elems: int,
        config: InjectionConfig,
    ) -> None:
        """Add one configuration's correction terms to ``acc_view`` in place.

        ``acc_view`` must be writable (a fresh copy or a slice of a fused
        accumulator stack) and hold the *clean* accumulator of the samples
        that ``cols`` describes.  Shared by the single-trial path and the
        fused multi-trial path, so both produce bit-identical corrections.
        """
        start = PROFILER.tick()
        for site, model in config.faults.items():
            site.validate(self.geometry.num_macs, self.geometry.muls_per_mac)
            correction = self._site_correction(
                cols, w_mat, out_channels, in_channels, kernel_elems, site, model
            )
            if correction is None:
                continue
            oc_sel, delta = correction
            acc_view[:, oc_sel, :] += delta
        PROFILER.tock("correction", start)

    @staticmethod
    def _validate_stage_combination(config: InjectionConfig) -> None:
        """Reject fault combinations whose corrections are not additive.

        Corrections are applied independently per armed site on top of the
        *clean* accumulator, which is exact as long as every armed fault
        touches a disjoint set of terms.  An accumulator-stage fault is a
        non-linear function of its MAC unit's partial sums, so it cannot be
        combined with another fault on the same MAC unit (the scalar
        reference engine handles such configurations; the vectorised engine
        refuses them rather than silently produce different results).
        """
        acc_macs: list[int] = []
        product_macs: set[int] = set()
        for site, model in config.faults.items():
            if model.stage == "accumulator":
                acc_macs.append(site.mac_unit)
            else:
                product_macs.add(site.mac_unit)
        duplicates = {mac for mac in acc_macs if acc_macs.count(mac) > 1}
        if duplicates:
            raise ValueError(
                f"MAC unit(s) {sorted(duplicates)} carry more than one "
                "accumulator-stage fault; a MAC unit has a single partial-sum bus"
            )
        overlap = set(acc_macs) & product_macs
        if overlap:
            raise NotImplementedError(
                f"MAC unit(s) {sorted(overlap)} combine product-stage and "
                "accumulator-stage faults; the vectorised engine cannot apply "
                "these additively — use the scalar reference engine"
            )

    def _cycle_indices(
        self,
        n_batch: int,
        positions: int,
        kernel_groups: int,
        channel_groups: int,
        kernel_elems: int,
        kg_sel: np.ndarray,
        inner: np.ndarray,
    ) -> np.ndarray:
        """Per-layer atomic-operation index of each affected term.

        The hardware schedule iterates sample -> output position -> kernel
        group -> channel group -> kernel element, every multiplier firing
        once per atomic operation, so the cycle of the term computed for
        (sample ``n``, output position ``p``, kernel group ``kg``, channel
        group ``cg``, kernel element ``e``) is::

            ((n * P + p) * KG + kg) * (CG * K^2) + cg * K^2 + e

        ``kg_sel`` holds the kernel group of each selected output channel and
        ``inner`` the ``cg * K^2 + e`` term of each affected im2col row; the
        result has shape ``(N, len(kg_sel), len(inner), P)`` matching the
        materialised products.
        """
        np_term = (
            np.arange(n_batch, dtype=np.int64)[:, None] * positions
            + np.arange(positions, dtype=np.int64)[None, :]
        )  # (N, P)
        return (
            (np_term[:, None, None, :] * kernel_groups + kg_sel[None, :, None, None])
            * (channel_groups * kernel_elems)
            + inner[None, None, :, None]
        )

    def _accumulator_delta(
        self,
        cols: np.ndarray,
        w_mat: np.ndarray,
        oc_sel: np.ndarray,
        in_channels: int,
        kernel_elems: int,
        model: FaultModel,
    ) -> np.ndarray:
        """Correction for an accumulator-stage fault on one MAC unit.

        The fault transforms every partial sum the MAC unit forwards to the
        CACC — one per (channel group, kernel element) atomic operation — so
        the affected partial sums are materialised by grouping the im2col
        rows into atomic-C lanes (padding lanes contribute zero, exactly as
        the zero-padded hardware lanes do) and the correction is the summed
        difference between the faulty and the clean partials.
        """
        atomic_c = self.geometry.atomic_c
        channel_groups = self.geometry.channel_groups(in_channels)
        n_batch, _, positions = cols.shape
        n_out = oc_sel.size
        padded_channels = channel_groups * atomic_c

        w_g = np.zeros((n_out, padded_channels, kernel_elems), dtype=np.int64)
        w_g[:, :in_channels, :] = (
            w_mat[oc_sel].astype(np.int64).reshape(n_out, in_channels, kernel_elems)
        )
        w_g = w_g.reshape(n_out, channel_groups, atomic_c, kernel_elems)
        cols_g = np.zeros(
            (n_batch, padded_channels, kernel_elems, positions), dtype=np.int64
        )
        cols_g[:, :in_channels] = (
            cols.astype(np.int64).reshape(n_batch, in_channels, kernel_elems, positions)
        )
        cols_g = cols_g.reshape(n_batch, channel_groups, atomic_c, kernel_elems, positions)

        # One partial sum per (sample, output channel, channel group, kernel
        # element, position): the lane axis is contracted by the adder tree.
        # The generic int64 einsum is acceptable here because, like the
        # value-dependent product path, it only touches the armed MAC's
        # ~1/atomic_k slice of the layer; the clean accumulator itself still
        # comes from the BLAS-backed GEMM core (and is usually cached).
        partials = np.einsum("ogle,nglep->nogep", w_g, cols_g)
        faulty = model.apply(partials, self.rng)
        return (faulty - partials).sum(axis=(2, 3))

    def _site_correction(
        self,
        cols: np.ndarray,
        w_mat: np.ndarray,
        out_channels: int,
        in_channels: int,
        kernel_elems: int,
        site: FaultSite,
        model: FaultModel,
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Correction term added to ``acc[:, oc_sel, :]`` for one fault site."""
        atomic_c = self.geometry.atomic_c
        atomic_k = self.geometry.atomic_k

        oc_sel = np.arange(site.mac_unit, out_channels, atomic_k)
        if oc_sel.size == 0:
            # The MAC unit only ever processes padded (discarded) kernels.
            return None

        if model.stage == "accumulator":
            if model.cycle_dependent:
                raise NotImplementedError(
                    "cycle-dependent accumulator-stage models are not supported"
                )
            delta = self._accumulator_delta(
                cols, w_mat, oc_sel, in_channels, kernel_elems, model
            )
            return oc_sel, delta

        ic_real = np.arange(site.multiplier, in_channels, atomic_c)
        channel_groups = self.geometry.channel_groups(in_channels)
        pad_lane_count = channel_groups - ic_real.size
        pad_terms = pad_lane_count * kernel_elems

        # Row r of the im2col buffer holds (channel r // K^2, kernel elem
        # r % K^2); the faulty lane touches every kernel element of its
        # channels, i.e. the K^2-blocks starting at ic_real * K^2.
        rows = (ic_real[:, None] * kernel_elems + np.arange(kernel_elems)[None, :]).ravel()
        n_batch, _, positions = cols.shape

        constant = model.constant_override()
        if constant is not None and not model.value_dependent:
            total_terms = rows.size + pad_terms
            if rows.size:
                w_sub = w_mat[np.ix_(oc_sel, rows)]
                cols_sub = cols[:, rows, :]
                true_contrib = exact_matmul(w_sub, cols_sub)
            else:
                true_contrib = np.zeros((n_batch, oc_sel.size, positions), dtype=np.int64)
            delta = np.int64(constant) * total_terms - true_contrib
            return oc_sel, delta

        if model.cycle_dependent:
            return oc_sel, self._cyclic_delta(
                cols, w_mat, oc_sel, in_channels, kernel_elems, out_channels,
                ic_real, rows, site, model,
            )

        # Value-dependent path: materialise the affected products.
        delta = np.zeros((n_batch, oc_sel.size, positions), dtype=np.int64)
        if rows.size:
            w_sub = w_mat[np.ix_(oc_sel, rows)].astype(np.int64)  # (O, R)
            cols_sub = cols[:, rows, :].astype(np.int64)  # (N, R, P)
            products = w_sub[None, :, :, None] * cols_sub[:, None, :, :]  # (N, O, R, P)
            faulty = model.apply(products, self.rng)
            delta += (faulty - products).sum(axis=2)
        if pad_terms:
            pad_products = np.zeros((n_batch, oc_sel.size, pad_terms, positions), dtype=np.int64)
            pad_faulty = model.apply(pad_products, self.rng)
            delta += pad_faulty.sum(axis=2)
        return oc_sel, delta

    def _cyclic_delta(
        self,
        cols: np.ndarray,
        w_mat: np.ndarray,
        oc_sel: np.ndarray,
        in_channels: int,
        kernel_elems: int,
        out_channels: int,
        ic_real: np.ndarray,
        rows: np.ndarray,
        site: FaultSite,
        model: FaultModel,
    ) -> np.ndarray:
        """Correction for a cycle-dependent product-stage fault on one site.

        The faulty value of each affected product depends on the atomic
        operation that produced it, so the cycle index of every affected
        term (real lanes *and* zero-padded lanes, which still cycle in
        hardware) is reconstructed from the schedule and handed to the
        model together with the materialised products.
        """
        atomic_c = self.geometry.atomic_c
        atomic_k = self.geometry.atomic_k
        channel_groups = self.geometry.channel_groups(in_channels)
        kernel_groups = self.geometry.kernel_groups(out_channels)
        pad_lane_count = channel_groups - ic_real.size
        n_batch, _, positions = cols.shape
        kg_sel = oc_sel // atomic_k
        elems = np.arange(kernel_elems, dtype=np.int64)

        delta = np.zeros((n_batch, oc_sel.size, positions), dtype=np.int64)
        if rows.size:
            inner = ((ic_real // atomic_c)[:, None] * kernel_elems + elems[None, :]).ravel()
            cycles = self._cycle_indices(
                n_batch, positions, kernel_groups, channel_groups, kernel_elems,
                kg_sel, inner,
            )
            w_sub = w_mat[np.ix_(oc_sel, rows)].astype(np.int64)  # (O, R)
            cols_sub = cols[:, rows, :].astype(np.int64)  # (N, R, P)
            products = w_sub[None, :, :, None] * cols_sub[:, None, :, :]  # (N, O, R, P)
            faulty = model.apply_at(products, cycles)
            delta += (faulty - products).sum(axis=2)
        if pad_lane_count:
            # The trailing channel groups hold the site's padding lanes;
            # their products are zero but the transient still overrides them.
            pad_cgs = np.arange(channel_groups - pad_lane_count, channel_groups, dtype=np.int64)
            inner = (pad_cgs[:, None] * kernel_elems + elems[None, :]).ravel()
            cycles = self._cycle_indices(
                n_batch, positions, kernel_groups, channel_groups, kernel_elems,
                kg_sel, inner,
            )
            pad_products = np.zeros(
                (n_batch, oc_sel.size, inner.size, positions), dtype=np.int64
            )
            pad_faulty = model.apply_at(pad_products, cycles)
            delta += pad_faulty.sum(axis=2)
        return delta

    # ------------------------------------------------------------------
    # Fully connected
    # ------------------------------------------------------------------
    def linear_accumulate(
        self,
        x_q: np.ndarray,
        node: QLinear,
        config: InjectionConfig | None = None,
        exec_index: int = 0,
    ) -> np.ndarray:
        """Raw accumulator of a fully-connected layer, int64 of shape (N, OUT)."""
        if x_q.dtype != np.int8:
            raise TypeError(f"expected int8 activations, got {x_q.dtype}")
        config = config or InjectionConfig.fault_free()
        if x_q.ndim != 2:
            raise ValueError(f"linear input must be (N, features), got shape {x_q.shape}")
        x_q, weight, config, reusable = self._staged_operands(
            x_q, node.weight, config, exec_index
        )
        n, in_features = x_q.shape
        out_features, in_w = weight.shape
        if in_features != in_w:
            raise ValueError(f"{node.name}: input features {in_features} != weight {in_w}")

        # An FC layer is a 1x1 convolution over a 1x1 feature map on this
        # datapath; reuse the convolution fault arithmetic with P == 1.
        w_mat = weight  # int8, (OUT, IN)
        cols, acc, owned = self._clean_accumulate(
            node.name, x_q, w_mat, lambda: x_q.reshape(n, in_features, 1),
            reusable=reusable,
        )

        if config.enabled:
            self._validate_stage_combination(config)
            if not owned:
                acc = acc.copy()
            self._apply_config(acc, cols, w_mat, out_features, in_features, 1, config)
            owned = True

        acc = self._saturated(acc, owned)
        return acc.reshape(n, out_features)

    # ------------------------------------------------------------------
    # Fused multi-trial evaluation
    # ------------------------------------------------------------------
    def _fused_clean_parts(
        self,
        name: str,
        x_shared: np.ndarray | None,
        make_cols,
        w_mat: np.ndarray,
        clean_entry: TapeOpEntry | None,
    ) -> tuple[np.ndarray, np.ndarray, bool]:
        """``(cols, clean acc, acc owned)`` for a fused layer evaluation.

        ``clean_entry`` (all trials still on the clean prefix) serves the
        taped parts without any compute; a shared clean input without taped
        parts goes through :meth:`_clean_accumulate` (one GEMM for the whole
        group, cache-aware); a diverged trial stack runs one stacked GEMM.
        """
        if clean_entry is not None and clean_entry.acc is not None:
            if self.tape is not None:
                self.tape.layer_hits += 1
            return clean_entry.cols, clean_entry.acc, False
        if x_shared is not None:
            return self._clean_accumulate(name, x_shared, w_mat, make_cols)
        if self.tape is not None:
            self.tape.layer_misses += 1
        start = PROFILER.tick()
        cols = make_cols()
        acc = exact_matmul(w_mat, cols)
        PROFILER.tock("suffix_forward", start)
        return cols, acc, True

    def _fused_corrections(
        self,
        cols: np.ndarray,
        clean_acc: np.ndarray,
        w_mat: np.ndarray,
        out_channels: int,
        in_channels: int,
        kernel_elems: int,
        configs: list[InjectionConfig],
        per_trial: int,
        shared_cols: bool,
        acc_owned: bool = False,
    ) -> np.ndarray:
        """Stack of per-trial faulty accumulators, shape ``(G*N, OC, P)``.

        ``shared_cols`` means every trial sees the same clean input (cols
        has ``per_trial`` samples and the clean accumulator is broadcast
        across the group); otherwise ``cols``/``clean_acc`` hold the whole
        stack and trial ``g`` corrects its own ``[g*N, (g+1)*N)`` slice.
        Each trial's correction is computed exactly as the single-trial
        path computes it — same cols, same cycle indices (per-slice sample
        indices restart at 0) — so the stack is bit-identical to evaluating
        the group one configuration at a time.
        """
        groups = len(configs)
        if shared_cols:
            acc_stack = np.tile(clean_acc, (groups, 1, 1))
        elif acc_owned:
            acc_stack = clean_acc
        else:
            acc_stack = clean_acc.copy()
        for g, config in enumerate(configs):
            if not config.enabled:
                continue
            self._validate_stage_combination(config)
            trial_cols = cols if shared_cols else cols[g * per_trial:(g + 1) * per_trial]
            acc_view = acc_stack[g * per_trial:(g + 1) * per_trial]
            self._apply_config(
                acc_view, trial_cols, w_mat, out_channels, in_channels,
                kernel_elems, config,
            )
        return acc_stack

    def conv_accumulate_fused(
        self,
        node: QConv,
        configs: list[InjectionConfig],
        per_trial: int,
        x_stack: np.ndarray | None = None,
        x_clean: np.ndarray | None = None,
        clean_entry: TapeOpEntry | None = None,
    ) -> np.ndarray:
        """Convolution accumulators of ``len(configs)`` trials in one pass.

        Exactly one input form must describe the clean prefix state:

        * ``clean_entry`` — all trials' inputs equal the taped clean input;
          the taped cols/accumulator are reused and only the per-trial
          correction terms are evaluated.
        * ``x_clean`` — shared clean input ``(N, C, H, W)`` with no taped
          parts available; the clean GEMM runs once for the whole group.
        * ``x_stack`` — diverged inputs stacked as ``(G*N, C, H, W)``; one
          stacked im2col + GEMM replaces G per-trial passes.

        Returns the saturated accumulator stack ``(G*N, OC, OH, OW)``,
        bit-identical to concatenating G single-trial ``conv_accumulate``
        calls.
        """
        sources = [x_stack, x_clean, clean_entry]
        if sum(s is not None for s in sources) != 1:
            raise ValueError("provide exactly one of x_stack, x_clean, clean_entry")
        groups = len(configs)
        if clean_entry is not None:
            x_ref = clean_entry.inputs[0]
        elif x_clean is not None:
            x_ref = x_clean
        else:
            x_ref = x_stack
            if x_ref.shape[0] != groups * per_trial:
                raise ValueError(
                    f"stack of {x_ref.shape[0]} samples does not hold "
                    f"{groups} trials x {per_trial} images"
                )
        if x_ref.dtype != np.int8:
            raise TypeError(f"expected int8 activations, got {x_ref.dtype}")
        _, ic, h, w = x_ref.shape
        oc, ic_w, k, _ = node.weight.shape
        if ic != ic_w:
            raise ValueError(f"{node.name}: input channels {ic} != weight channels {ic_w}")
        out_h = conv_output_size(h, k, node.stride, node.padding)
        out_w = conv_output_size(w, k, node.stride, node.padding)
        w_mat = node.weight.reshape(oc, -1)

        shared = x_stack is None
        source = x_ref if x_stack is None else x_stack
        cols, clean_acc, acc_owned = self._fused_clean_parts(
            node.name,
            source if shared else None,
            lambda: im2col(source, k, node.stride, node.padding),
            w_mat,
            clean_entry,
        )
        acc_stack = self._fused_corrections(
            cols, clean_acc, w_mat, oc, ic, k * k, configs, per_trial, shared,
            acc_owned=acc_owned and not shared,
        )
        # The stack is always freshly tiled/copied, so saturate in place.
        saturate(acc_stack, ACCUMULATOR_WIDTH, out=acc_stack)
        return acc_stack.reshape(groups * per_trial, oc, out_h, out_w)

    def linear_accumulate_fused(
        self,
        node: QLinear,
        configs: list[InjectionConfig],
        per_trial: int,
        x_stack: np.ndarray | None = None,
        x_clean: np.ndarray | None = None,
        clean_entry: TapeOpEntry | None = None,
    ) -> np.ndarray:
        """Fully-connected accumulators of ``len(configs)`` trials at once.

        Same contract as :meth:`conv_accumulate_fused`; returns the stack
        ``(G*N, OUT)``.
        """
        sources = [x_stack, x_clean, clean_entry]
        if sum(s is not None for s in sources) != 1:
            raise ValueError("provide exactly one of x_stack, x_clean, clean_entry")
        groups = len(configs)
        if clean_entry is not None:
            x_ref = clean_entry.inputs[0]
        else:
            x_ref = x_clean if x_clean is not None else x_stack
        if x_stack is not None and x_stack.shape[0] != groups * per_trial:
            raise ValueError(
                f"stack of {x_stack.shape[0]} samples does not hold "
                f"{groups} trials x {per_trial} images"
            )
        if x_ref.dtype != np.int8:
            raise TypeError(f"expected int8 activations, got {x_ref.dtype}")
        if x_ref.ndim != 2:
            raise ValueError(f"linear input must be (N, features), got shape {x_ref.shape}")
        in_features = x_ref.shape[1]
        out_features, in_w = node.weight.shape
        if in_features != in_w:
            raise ValueError(f"{node.name}: input features {in_features} != weight {in_w}")
        w_mat = node.weight

        shared = x_stack is None
        source = x_ref if x_stack is None else x_stack
        cols, clean_acc, acc_owned = self._fused_clean_parts(
            node.name,
            source if shared else None,
            lambda: source.reshape(source.shape[0], in_features, 1),
            w_mat,
            clean_entry,
        )
        acc_stack = self._fused_corrections(
            cols, clean_acc, w_mat, out_features, in_features, 1,
            configs, per_trial, shared,
            acc_owned=acc_owned and not shared,
        )
        saturate(acc_stack, ACCUMULATOR_WIDTH, out=acc_stack)
        return acc_stack.reshape(groups * per_trial, out_features)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    def affected_fraction(self, node: QConv | QLinear, config: InjectionConfig) -> float:
        """Fraction of this layer's products that the armed faults corrupt.

        Useful for sanity-checking campaign severity: a single faulty
        multiplier in an 8x8 array corrupts 1/64 of all products.
        """
        if not config.enabled:
            return 0.0
        if isinstance(node, QConv):
            in_channels, out_channels = node.in_channels, node.out_channels
        else:
            in_channels, out_channels = node.in_features, node.out_features
        total_pairs = self.geometry.pad_channels(in_channels) * out_channels
        affected = 0
        for site, model in config.faults.items():
            oc_count = len(range(site.mac_unit, out_channels, self.geometry.atomic_k))
            if model.stage == "accumulator":
                # Every lane of the MAC unit feeds the corrupted partial sum.
                ic_count = self.geometry.pad_channels(in_channels)
            else:
                ic_count = self.geometry.channel_groups(in_channels)
            affected += oc_count * ic_count
        return affected / max(total_pairs, 1)
