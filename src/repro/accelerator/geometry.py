"""MAC-array geometry of the emulated accelerator.

The paper's NVDLA configuration (nv_small-like) contains 8 MAC units of 8
multipliers each: one *atomic operation* multiplies 8 input channels
(atomic-C) against the corresponding weights of 8 output kernels (atomic-K)
and accumulates the 64 products.  Other geometries are supported so that the
scalability experiments in the benchmarks can sweep the array size.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ArrayGeometry:
    """Shape of the MAC array.

    Attributes
    ----------
    num_macs:
        Number of MAC units; equals atomic-K, the number of output channels
        processed per atomic operation.
    muls_per_mac:
        Multipliers per MAC unit; equals atomic-C, the number of input
        channels consumed per atomic operation.
    """

    num_macs: int = 8
    muls_per_mac: int = 8

    def __post_init__(self) -> None:
        if self.num_macs <= 0 or self.muls_per_mac <= 0:
            raise ValueError("array dimensions must be positive")

    @property
    def atomic_k(self) -> int:
        """Output channels per atomic operation."""
        return self.num_macs

    @property
    def atomic_c(self) -> int:
        """Input channels per atomic operation."""
        return self.muls_per_mac

    @property
    def total_multipliers(self) -> int:
        return self.num_macs * self.muls_per_mac

    def pad_channels(self, channels: int) -> int:
        """Round ``channels`` up to a multiple of atomic-C."""
        c = self.atomic_c
        return ((channels + c - 1) // c) * c

    def pad_kernels(self, kernels: int) -> int:
        """Round ``kernels`` up to a multiple of atomic-K."""
        k = self.atomic_k
        return ((kernels + k - 1) // k) * k

    def channel_groups(self, channels: int) -> int:
        """Number of atomic-C groups needed to cover ``channels``."""
        return self.pad_channels(channels) // self.atomic_c

    def kernel_groups(self, kernels: int) -> int:
        """Number of atomic-K groups needed to cover ``kernels``."""
        return self.pad_kernels(kernels) // self.atomic_k


#: The 8x8 geometry used throughout the paper's case study.
PAPER_GEOMETRY = ArrayGeometry(num_macs=8, muls_per_mac=8)
