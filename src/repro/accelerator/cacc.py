"""The CACC: wide accumulation of CMAC partial sums.

The accumulator collects the per-cycle partial sums of every MAC unit over
all atomic operations contributing to one output element.  The hardware uses
34-bit saturating registers; with 8-bit operands and the layer sizes of
ResNet-18 the true sums never approach that limit, but the saturation is
modelled so that pathological fault injections behave like the hardware
rather than like unbounded Python integers.
"""

from __future__ import annotations

import numpy as np

from repro.utils.bitops import ACCUMULATOR_WIDTH, saturate


class Accumulator:
    """A bank of saturating accumulation registers (one per output channel)."""

    def __init__(self, num_channels: int, width: int = ACCUMULATOR_WIDTH):
        if num_channels <= 0:
            raise ValueError("accumulator needs at least one channel")
        self.num_channels = num_channels
        self.width = width
        self._values = np.zeros(num_channels, dtype=np.int64)

    def reset(self) -> None:
        self._values.fill(0)

    def accumulate(self, partial_sums) -> None:
        """Add one vector of partial sums (one entry per channel)."""
        partial = np.asarray(partial_sums, dtype=np.int64)
        if partial.shape != (self.num_channels,):
            raise ValueError(
                f"expected {self.num_channels} partial sums, got shape {partial.shape}"
            )
        self._values = saturate(self._values + partial, self.width)

    @property
    def values(self) -> np.ndarray:
        """Current accumulator contents (copy)."""
        return self._values.copy()

    def read_and_reset(self) -> np.ndarray:
        out = self.values
        self.reset()
        return out


def saturating_accumulate(partials: np.ndarray, axis: int, width: int = ACCUMULATOR_WIDTH) -> np.ndarray:
    """Vectorised saturating sum along ``axis``.

    The exact hardware saturates after every addition; summing first and
    saturating once is equivalent whenever no intermediate value overflows,
    which holds for all realistic layer shapes (the worst-case ResNet-18
    accumulation is far below 2^33).  The final saturation still protects the
    downstream SDP from fault-induced overflow.
    """
    total = np.sum(np.asarray(partials, dtype=np.int64), axis=axis)
    return saturate(total, width)
