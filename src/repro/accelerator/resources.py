"""FPGA resource model (LUT/FF) of the accelerator and its fault injectors.

Table I of the paper reports, for the Zynq UltraScale+ XCZU7EV:

==============================  =======  =======
configuration                    #LUT     #FF
==============================  =======  =======
NVDLA (no fault injection)       94 438   104 732
NVDLA + FI (constant error)      94 456   104 717
NVDLA + FI (variable error)      96 081   106 150
==============================  =======  =======

i.e. a constant-value injector costs **+18 LUTs** and essentially no
flip-flops (the -15 FF delta is synthesis noise), while the fully
programmable (variable) injector costs **+1 643 LUTs / +1 418 FFs**, which
the paper quotes as 0.71 % / 0.31 % *of the device* (the XCZU7EV offers
230 400 LUTs and 460 800 FFs).

No synthesis tool is available in this environment, so this module models
the resource usage analytically from the array geometry: a component-level
breakdown whose per-unit costs are calibrated such that the paper's 8x8
configuration reproduces the table above exactly, and that scales in the
physically expected way (muxes and registers proportional to the number of
product bits) when the geometry is swept.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.accelerator.geometry import ArrayGeometry, PAPER_GEOMETRY
from repro.utils.bitops import ACCUMULATOR_WIDTH, PRODUCT_WIDTH

#: Logic resources of the XCZU7EV device used by the paper's platform.
XCZU7EV_LUTS = 230_400
XCZU7EV_FFS = 460_800

#: Table I reference values for the 8x8 configuration (used for calibration
#: and asserted against in the tests).
PAPER_BASE_LUTS = 94_438
PAPER_BASE_FFS = 104_732
PAPER_CONST_FI_LUTS = 94_456
PAPER_CONST_FI_FFS = 104_717
PAPER_VAR_FI_LUTS = 96_081
PAPER_VAR_FI_FFS = 106_150


class FIVariant(enum.Enum):
    """Which fault-injection hardware is synthesised into the accelerator."""

    NONE = "none"
    CONSTANT = "constant"
    VARIABLE = "variable"


@dataclass(frozen=True)
class ResourceReport:
    """LUT/FF totals plus a per-component breakdown."""

    luts: int
    ffs: int
    breakdown: dict[str, tuple[int, int]] = field(default_factory=dict)

    def lut_overhead_vs(self, other: "ResourceReport") -> int:
        return self.luts - other.luts

    def ff_overhead_vs(self, other: "ResourceReport") -> int:
        return self.ffs - other.ffs

    def device_lut_fraction(self, device_luts: int = XCZU7EV_LUTS) -> float:
        return self.luts / device_luts

    def device_ff_fraction(self, device_ffs: int = XCZU7EV_FFS) -> float:
        return self.ffs / device_ffs


@dataclass
class ResourceModel:
    """Component-level LUT/FF estimator.

    The per-component constants below are calibrated against the paper's 8x8
    configuration; they are not synthesis results.  Each constant scales
    with the structural quantity it physically corresponds to (number of
    multipliers, product bits, accumulator registers, ...), so sweeping the
    geometry produces trends with the right shape even though the absolute
    numbers inherit the calibration.
    """

    geometry: ArrayGeometry = PAPER_GEOMETRY

    #: LUTs of one signed 8x8 multiplier implemented in fabric logic.
    luts_per_multiplier: int = 68
    #: LUTs of the adder tree per MAC unit (7 adders of ~20 bits for 8 lanes).
    adder_tree_luts_per_mac: int = 150
    #: FFs pipelining each multiplier's product.
    ffs_per_multiplier: int = PRODUCT_WIDTH
    #: Accumulator registers per MAC unit (wide partial sums, double-banked).
    accumulator_ffs_per_mac: int = 2 * ACCUMULATOR_WIDTH * 8
    accumulator_luts_per_mac: int = 220
    #: Convolution buffer, sequencers, SDP, PDP, bridges and the rest of the
    #: accelerator that does not scale with the MAC array (calibrated
    #: remainder so the 8x8 totals match Table I).
    infrastructure_luts: int = 0
    infrastructure_ffs: int = 0

    #: Constant-error injector: one LUT per overridden product bit of a single
    #: globally-selected injector (Table I reports +18 LUTs).
    constant_fi_luts: int = PRODUCT_WIDTH
    constant_fi_ffs: int = 0

    #: Variable-error injector, per multiplier: an 18-bit 2:1 mux plus select
    #: fan-in (LUTs) and the registered fdata/fsel copy (FFs).
    variable_fi_luts_per_multiplier: float = 22.42
    variable_fi_ffs_per_multiplier: float = 20.16
    #: AXI4-Lite slave + control registers of the variable injector.
    variable_fi_interface_luts: int = 208
    variable_fi_interface_ffs: int = 128

    def __post_init__(self) -> None:
        # Calibrate the infrastructure remainder so the paper geometry
        # reproduces the Table I base configuration exactly.
        paper = PAPER_GEOMETRY
        array_luts, array_ffs = self._array_resources(paper)
        self.infrastructure_luts = PAPER_BASE_LUTS - array_luts
        self.infrastructure_ffs = PAPER_BASE_FFS - array_ffs
        if self.infrastructure_luts < 0 or self.infrastructure_ffs < 0:
            raise ValueError("per-component constants exceed the calibrated totals")

    # ------------------------------------------------------------------
    def _array_resources(self, geometry: ArrayGeometry) -> tuple[int, int]:
        n_mul = geometry.total_multipliers
        n_mac = geometry.num_macs
        luts = (
            n_mul * self.luts_per_multiplier
            + n_mac * self.adder_tree_luts_per_mac
            + n_mac * self.accumulator_luts_per_mac
        )
        ffs = n_mul * self.ffs_per_multiplier + n_mac * self.accumulator_ffs_per_mac
        return luts, ffs

    def estimate(self, variant: FIVariant = FIVariant.NONE) -> ResourceReport:
        """Estimate the accelerator's resource usage for one FI variant."""
        array_luts, array_ffs = self._array_resources(self.geometry)
        breakdown: dict[str, tuple[int, int]] = {
            "mac_array": (array_luts, array_ffs),
            "infrastructure": (self.infrastructure_luts, self.infrastructure_ffs),
        }
        luts = array_luts + self.infrastructure_luts
        ffs = array_ffs + self.infrastructure_ffs

        if variant is FIVariant.CONSTANT:
            fi_luts = self.constant_fi_luts
            fi_ffs = self.constant_fi_ffs
            breakdown["fault_injection"] = (fi_luts, fi_ffs)
            luts += fi_luts
            ffs += fi_ffs
        elif variant is FIVariant.VARIABLE:
            n_mul = self.geometry.total_multipliers
            fi_luts = int(round(n_mul * self.variable_fi_luts_per_multiplier)) + self.variable_fi_interface_luts
            fi_ffs = int(round(n_mul * self.variable_fi_ffs_per_multiplier)) + self.variable_fi_interface_ffs
            breakdown["fault_injection"] = (fi_luts, fi_ffs)
            luts += fi_luts
            ffs += fi_ffs

        return ResourceReport(luts=luts, ffs=ffs, breakdown=breakdown)

    def table1_rows(self) -> list[tuple[str, int, int]]:
        """The three synthesis rows of Table I for the configured geometry."""
        base = self.estimate(FIVariant.NONE)
        const = self.estimate(FIVariant.CONSTANT)
        var = self.estimate(FIVariant.VARIABLE)
        return [
            ("NVDLA", base.luts, base.ffs),
            ("NVDLA + FI (constant error)", const.luts, const.ffs),
            ("NVDLA + FI (variable error)", var.luts, var.ffs),
        ]
