"""Configuration space bus: the register-programming interface of the emulator.

The real NVDLA is programmed layer by layer through its CSB registers; the
kernel driver writes a descriptor per hardware layer and rings a doorbell.
The emulator keeps a faithful but lightweight analogue: every executed
operation is "programmed" by writing a small set of named registers, and the
programming log can be inspected by tests and by the runtime to verify that
the execution plan that ran is the one that was submitted.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RegisterWrite:
    """One logged register write: (operation, register, value)."""

    op_name: str
    register: str
    value: int


@dataclass
class ConfigSpaceBus:
    """Register write log + doorbell counter."""

    writes: list[RegisterWrite] = field(default_factory=list)
    doorbells: int = 0

    def write(self, op_name: str, register: str, value: int) -> None:
        """Record a register write for operation ``op_name``."""
        self.writes.append(RegisterWrite(op_name=op_name, register=register, value=int(value)))

    def program_operation(self, op_name: str, fields: dict[str, int]) -> None:
        """Program a full operation descriptor (one write per field)."""
        for register, value in fields.items():
            self.write(op_name, register, value)

    def ring_doorbell(self) -> None:
        """Kick off the programmed operation."""
        self.doorbells += 1

    def writes_for(self, op_name: str) -> list[RegisterWrite]:
        return [w for w in self.writes if w.op_name == op_name]

    def reset(self) -> None:
        self.writes.clear()
        self.doorbells = 0

    def __len__(self) -> int:
        return len(self.writes)
