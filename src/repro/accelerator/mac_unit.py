"""One MAC unit: a lane of multipliers feeding an adder tree.

In the paper's accelerator each MAC unit holds 8 signed 8-bit multipliers
whose (possibly fault-injected) 18-bit products are summed by an adder tree;
the sum is forwarded to the accumulator (CACC).  One MAC unit produces the
partial sum of one output channel for one atomic operation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.accelerator.multiplier import Int8Multiplier
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultModel


class MACUnit:
    """A multiply-accumulate unit with per-multiplier fault hooks.

    Parameters
    ----------
    num_multipliers:
        Number of multiplier lanes (atomic-C); 8 in the paper.
    rng:
        Randomness source shared by non-deterministic fault models.
    """

    def __init__(self, num_multipliers: int = 8, rng: np.random.Generator | None = None):
        if num_multipliers <= 0:
            raise ValueError("a MAC unit needs at least one multiplier")
        self.num_multipliers = num_multipliers
        rng = rng or np.random.default_rng(0)
        self.multipliers = [Int8Multiplier(rng=rng) for _ in range(num_multipliers)]
        #: Number of atomic operations executed (each consumes one cycle).
        self.cycles = 0

    # ------------------------------------------------------------------
    # Fault configuration
    # ------------------------------------------------------------------
    def set_fault(self, lane: int, model: FaultModel) -> None:
        """Attach a fault model to multiplier ``lane``."""
        self._check_lane(lane)
        self.multipliers[lane].set_fault_model(model)

    def set_injector(self, lane: int, injector: FaultInjector) -> None:
        """Attach a bit-level injector to multiplier ``lane``."""
        self._check_lane(lane)
        self.multipliers[lane].injector = injector

    def clear_faults(self) -> None:
        for multiplier in self.multipliers:
            multiplier.clear_faults()

    def faulty_lanes(self) -> list[int]:
        return [i for i, m in enumerate(self.multipliers) if m.faulty]

    def _check_lane(self, lane: int) -> None:
        if not 0 <= lane < self.num_multipliers:
            raise ValueError(f"lane {lane} out of range [0, {self.num_multipliers})")

    # ------------------------------------------------------------------
    # Computation
    # ------------------------------------------------------------------
    def multiply_accumulate(self, activations: Sequence[int], weights: Sequence[int]) -> int:
        """One atomic operation: dot product of two ``num_multipliers`` vectors.

        Operands shorter than the lane count are zero-padded, exactly like
        the hardware pads partial channel groups — and, crucially, a faulty
        multiplier still injects its value on padded lanes.
        """
        if len(activations) > self.num_multipliers or len(weights) > self.num_multipliers:
            raise ValueError(
                f"operand vectors longer than the {self.num_multipliers} multiplier lanes"
            )
        self.cycles += 1
        total = 0
        for lane in range(self.num_multipliers):
            a = int(activations[lane]) if lane < len(activations) else 0
            w = int(weights[lane]) if lane < len(weights) else 0
            total += self.multipliers[lane].multiply(a, w)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"MACUnit(lanes={self.num_multipliers}, faulty={self.faulty_lanes()}, "
            f"cycles={self.cycles})"
        )
