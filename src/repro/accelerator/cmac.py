"""The CMAC: an array of MAC units executing atomic operations.

One atomic operation feeds the same ``atomic_c`` activations to every MAC
unit; MAC unit ``k`` multiplies them against the weights of output kernel
``k`` and produces one partial sum.  The CMAC therefore advances
``atomic_k`` output channels by ``atomic_c`` input channels per cycle.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.accelerator.geometry import ArrayGeometry, PAPER_GEOMETRY
from repro.accelerator.mac_unit import MACUnit
from repro.faults.injector import InjectionConfig
from repro.faults.models import FaultModel
from repro.faults.sites import FaultSite


class CMACArray:
    """The full MAC array with campaign-level fault configuration."""

    def __init__(self, geometry: ArrayGeometry = PAPER_GEOMETRY, rng: np.random.Generator | None = None):
        self.geometry = geometry
        rng = rng or np.random.default_rng(0)
        self.mac_units = [MACUnit(geometry.muls_per_mac, rng=rng) for _ in range(geometry.num_macs)]
        #: Accumulator-stage model per MAC unit (applied to the partial-sum
        #: bus after the adder tree, before the sum reaches the CACC).
        self.accumulator_models: dict[int, FaultModel] = {}
        #: The site each accumulator-stage model was armed at (for reporting).
        self._accumulator_sites: dict[int, FaultSite] = {}

    # ------------------------------------------------------------------
    # Fault configuration
    # ------------------------------------------------------------------
    def apply_injection_config(self, config: InjectionConfig) -> None:
        """Arm the MAC array according to a campaign configuration."""
        self.clear_faults()
        for site, model in config.faults.items():
            self.set_fault(site, model)

    def set_fault(self, site: FaultSite, model: FaultModel) -> None:
        site.validate(self.geometry.num_macs, self.geometry.muls_per_mac)
        if model.stage == "accumulator":
            # The lane coordinate is a convention (lane 0); the fault sits on
            # the MAC unit's single partial-sum bus, of which there is one.
            if site.mac_unit in self.accumulator_models:
                raise ValueError(
                    f"MAC unit {site.mac_unit} already has an accumulator-stage fault"
                )
            self.accumulator_models[site.mac_unit] = model
            self._accumulator_sites[site.mac_unit] = site
        else:
            self.mac_units[site.mac_unit].set_fault(site.multiplier, model)

    def clear_faults(self) -> None:
        for mac in self.mac_units:
            mac.clear_faults()
        self.accumulator_models.clear()
        self._accumulator_sites.clear()

    def faulty_sites(self) -> list[FaultSite]:
        sites = []
        for mac_idx, mac in enumerate(self.mac_units):
            for lane in mac.faulty_lanes():
                sites.append(FaultSite(mac_idx, lane))
        sites.extend(self._accumulator_sites.values())
        return sorted(sites)

    # ------------------------------------------------------------------
    # Computation
    # ------------------------------------------------------------------
    def atomic_op(
        self,
        activations: Sequence[int],
        weights_per_kernel: Sequence[Sequence[int]],
    ) -> list[int]:
        """Execute one atomic operation.

        Parameters
        ----------
        activations:
            Up to ``atomic_c`` int8 activations (one channel group).
        weights_per_kernel:
            One weight vector per MAC unit (up to ``atomic_k`` of them); each
            vector holds up to ``atomic_c`` int8 weights.

        Returns
        -------
        list[int]
            One partial sum per MAC unit.  MAC units beyond
            ``len(weights_per_kernel)`` still cycle with zero weights (they
            exist in hardware and their faults still fire), but their sums
            are returned as well so callers can discard padded kernels.
        """
        if len(weights_per_kernel) > self.geometry.num_macs:
            raise ValueError(
                f"{len(weights_per_kernel)} kernels exceed the {self.geometry.num_macs} MAC units"
            )
        sums = []
        zero_weights: list[int] = [0] * self.geometry.muls_per_mac
        for k in range(self.geometry.num_macs):
            weights = weights_per_kernel[k] if k < len(weights_per_kernel) else zero_weights
            total = self.mac_units[k].multiply_accumulate(activations, weights)
            model = self.accumulator_models.get(k)
            if model is not None:
                total = int(model.apply(np.array([total], dtype=np.int64))[0])
            sums.append(total)
        return sums

    @property
    def total_cycles(self) -> int:
        """Total atomic operations executed (all MAC units cycle together)."""
        return self.mac_units[0].cycles if self.mac_units else 0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"CMACArray(geometry={self.geometry}, faulty={self.faulty_sites()})"
