"""The SDP (single-point data processor): post-processing of accumulator data.

After the CMAC/CACC produce raw integer accumulators, the SDP applies, per
output element: bias addition, requantisation (integer multiply + rounding
shift), the fused ReLU, and — for residual connections — the elementwise
addition of a second int8 operand rescaled to the same output scale.  These
are the "Sum, activation, non-linear operations" partitions of the paper's
Fig. 1.
"""

from __future__ import annotations

import numpy as np

from repro.quant.qlayers import QAdd, QConv, QGlobalAvgPool, QLinear
from repro.quant.qscheme import INT8_MAX, INT8_MIN, requantize, requantize_owned
from repro.utils.bitops import ACCUMULATOR_WIDTH, saturate


class SDP:
    """Stateless post-processor; every method maps integer arrays to int8.

    Each operation exists in two bit-identical flavours: the reference
    methods (``conv_post``, ``elementwise_add``, ``global_average``) map
    fresh arrays through the seed-era requantisation chain, and the
    ``*_owned`` variants are the delta trial engine's hot path — they may
    mutate their accumulator argument in place and route through
    :func:`~repro.quant.qscheme.requantize_owned`, shaving the temporary
    allocations a campaign pays per layer per trial.  Callers of the owned
    variants must pass accumulators they own (the engine's are always
    freshly computed or freshly corrected).
    """

    def bias_add(self, accumulator: np.ndarray, bias: np.ndarray, channel_axis: int = 1) -> np.ndarray:
        """Add the per-channel int32 bias to raw accumulator values."""
        acc = np.asarray(accumulator, dtype=np.int64)
        bias = np.asarray(bias, dtype=np.int64)
        shape = [1] * acc.ndim
        shape[channel_axis] = -1
        return saturate(acc + bias.reshape(shape), ACCUMULATOR_WIDTH)

    def conv_post(self, accumulator: np.ndarray, node: QConv | QLinear, channel_axis: int = 1) -> np.ndarray:
        """Full convolution/FC post-processing: bias, requantise, ReLU.

        For a final :class:`QLinear` with ``requant=None`` the biased raw
        accumulator is returned (int64) instead of an int8 tensor.
        """
        acc = self.bias_add(accumulator, node.bias, channel_axis)
        if isinstance(node, QLinear) and node.requant is None:
            return acc
        return requantize(acc, node.requant, channel_axis=channel_axis, relu=node.relu)

    def elementwise_add(self, a: np.ndarray, b: np.ndarray, node: QAdd) -> np.ndarray:
        """Residual addition of two int8 tensors with independent rescaling."""
        if a.shape != b.shape:
            raise ValueError(f"elementwise add shapes differ: {a.shape} vs {b.shape}")
        a_scaled = requantize(
            np.asarray(a, dtype=np.int64), node.requant_a, channel_axis=1, saturate_to_int8=False
        )
        b_scaled = requantize(
            np.asarray(b, dtype=np.int64), node.requant_b, channel_axis=1, saturate_to_int8=False
        )
        total = a_scaled + b_scaled
        if node.relu:
            total = np.maximum(total, 0)
        return np.clip(total, INT8_MIN, INT8_MAX).astype(np.int8)

    def global_average(self, x: np.ndarray, node: QGlobalAvgPool) -> np.ndarray:
        """Global average pooling: integer spatial sum then requantisation."""
        acc = np.asarray(x, dtype=np.int64).sum(axis=(2, 3))
        return requantize(acc, node.requant, channel_axis=1, relu=False)

    # ------------------------------------------------------------------
    # Owned (in-place) variants — the delta trial engine's hot path
    # ------------------------------------------------------------------
    def conv_post_owned(
        self, accumulator: np.ndarray, node: QConv | QLinear, channel_axis: int = 1
    ) -> np.ndarray:
        """:meth:`conv_post` for an int64 accumulator the caller owns.

        The bias addition and 34-bit saturation mutate ``accumulator`` in
        place; the result is bit-identical to the reference method.
        """
        acc = accumulator
        if acc.dtype != np.int64 or not acc.flags.writeable:
            acc = acc.astype(np.int64)
        bias = node.bias.astype(np.int64, copy=False)
        shape = [1] * acc.ndim
        shape[channel_axis] = -1
        np.add(acc, bias.reshape(shape), out=acc)
        saturate(acc, ACCUMULATOR_WIDTH, out=acc)
        if isinstance(node, QLinear) and node.requant is None:
            return acc
        return requantize_owned(acc, node.requant, channel_axis=channel_axis, relu=node.relu)

    def elementwise_add_owned(self, a: np.ndarray, b: np.ndarray, node: QAdd) -> np.ndarray:
        """:meth:`elementwise_add` through the in-place requantise chain."""
        if a.shape != b.shape:
            raise ValueError(f"elementwise add shapes differ: {a.shape} vs {b.shape}")
        a_scaled = requantize_owned(a, node.requant_a, channel_axis=1, saturate_to_int8=False)
        b_scaled = requantize_owned(b, node.requant_b, channel_axis=1, saturate_to_int8=False)
        np.add(a_scaled, b_scaled, out=a_scaled)
        if node.relu:
            np.maximum(a_scaled, 0, out=a_scaled)
        np.clip(a_scaled, INT8_MIN, INT8_MAX, out=a_scaled)
        return a_scaled.astype(np.int8)

    def global_average_owned(self, x: np.ndarray, node: QGlobalAvgPool) -> np.ndarray:
        """:meth:`global_average` through the in-place requantise chain."""
        acc = np.asarray(x, dtype=np.int64).sum(axis=(2, 3))
        return requantize_owned(acc, node.requant, channel_axis=1, relu=False)
