"""The worker node agent: register, lease shards, evaluate, stream, beat.

A :class:`WorkerAgent` is the fleet analogue of one local pool worker
(:func:`repro.core.parallel._shard_worker`), with the wire in between:

* register with the coordinator (learning its heartbeat contract);
* poll for a lease; a grant names a scenario, a ``(lease_id, attempt)``
  token and the *remaining* trial indices of the shard;
* build (and memoise) the scenario's platform, report baseline accuracy
  and emulated throughput in the first record batch, then evaluate the
  leased indices through exactly the same fused-trial path local
  execution uses — records are bit-identical by construction;
* stream records in batches, heartbeat from a side thread, and send a
  completion when the shard is drained.

Failure behaviour mirrors a local worker.  If the coordinator becomes
unreachable (or any ack says the token is stale — the lease was
reclaimed while we worked), the agent *abandons* the lease: it stops
beating, skips the completion, and polls for new work; the coordinator's
heartbeat deadline re-leases whatever was left.  Abandonment is silent
on purpose — a partitioned node cannot tell anyone it is gone, so the
recovery path tested here is the one that needs no cooperation.

A :class:`~repro.core.chaos.ChaosPlan` makes the failures deterministic:
``kill`` events strike after N emitted records, flush the pending batch
(the delivered-then-re-executed duplicates a reclaim manufactures), and
either ``os._exit(73)`` (``hard_kill=True``: real process mode, e.g. the
CI fleet gate) or abandon the lease and stop the agent (thread mode, so
tests can simulate SIGKILL without losing the pytest process).
"""

from __future__ import annotations

import os
import threading
import time
import traceback

from repro.core.campaign import CampaignConfig
from repro.core.chaos import KILL_EXIT_CODE, ChaosPlan
from repro.core.parallel import _records_for_pairs
from repro.core.sweep import Scenario
from repro.service.client import CoordinatorClient, ServiceError
from repro.service.jobs import scenario_from_wire
from repro.service.protocol import (
    Heartbeat,
    LeaseComplete,
    LeaseGrant,
    NoWork,
    RecordBatch,
)
from repro.utils.logging import get_logger
from repro.utils.rng import SeededRNG

logger = get_logger(__name__)

#: Records per POST while streaming a shard (batching amortises HTTP
#: round-trips; merge is index-keyed, so batch size cannot affect records).
DEFAULT_BATCH_RECORDS = 16


class _LeaseAbandoned(Exception):
    """Stop serving the current lease without completing it.

    ``fatal=True`` means the node itself is going down (chaos kill/hang);
    ``fatal=False`` means only the lease is lost (stale token, partition)
    and the agent should poll for new work.
    """

    def __init__(self, reason: str, *, fatal: bool):
        super().__init__(reason)
        self.fatal = fatal


class WorkerAgent:
    """One fleet node: a lease-serving loop over a coordinator client."""

    def __init__(
        self,
        coordinator_url: str,
        name: str = "node",
        *,
        resolver=None,
        cache_dir=None,
        poll_interval: float = 0.25,
        max_idle: float | None = None,
        batch_records: int = DEFAULT_BATCH_RECORDS,
        chaos: ChaosPlan | None = None,
        hard_kill: bool = False,
        timeout: float = 10.0,
        retries: int = 5,
        backoff: float = 0.2,
        jitter_seed: int = 0,
    ):
        if batch_records < 1:
            raise ValueError("batch_records must be >= 1")
        self.name = name
        self.resolver = resolver
        self.cache_dir = cache_dir
        self.poll_interval = poll_interval
        self.max_idle = max_idle
        self.batch_records = batch_records
        self.chaos = chaos
        self.hard_kill = hard_kill
        self.client = CoordinatorClient(
            coordinator_url,
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            jitter_seed=jitter_seed,
        )
        # Heartbeats get their own client: the jitter stream is a numpy
        # Generator (not thread-safe), and a beat must not burn the long
        # retry budget of the serving path — one retry, then the beat is
        # missed and the next one will try again.
        self._hb_client = CoordinatorClient(
            coordinator_url,
            timeout=timeout,
            retries=1,
            backoff=backoff,
            jitter_seed=jitter_seed + 104729,
        )
        self.node_id: int | None = None
        self.heartbeat_interval = 1.0
        self.leases_served = 0
        #: Platform memo keyed on axis contents + evaluation geometry (same
        #: rationale as SweepRunner: names may collide, contents cannot).
        self._platforms: dict = {}

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Serve leases until idle past ``max_idle`` (0) or chaos-killed (73)."""
        registered = self.client.register(self.name)
        self.node_id = registered.node_id
        self.heartbeat_interval = registered.heartbeat_interval
        logger.info(
            "%s registered as node %d (heartbeat every %.2fs, timeout %.2fs)",
            self.name, self.node_id, registered.heartbeat_interval,
            registered.heartbeat_timeout,
        )
        idle = 0.0
        while True:
            try:
                reply = self.client.request_lease(self.node_id)
            except ConnectionError as exc:
                # Partitioned from the coordinator between leases: keep
                # polling (counts as idle time, so a dead coordinator does
                # not pin the node forever when --max-idle is set).
                logger.warning("%s cannot reach the coordinator: %s", self.name, exc)
                if self.max_idle is not None and idle >= self.max_idle:
                    return 0
                time.sleep(self.poll_interval)
                idle += self.poll_interval
                continue
            if isinstance(reply, NoWork):
                if self.max_idle is not None and idle >= self.max_idle:
                    logger.info(
                        "%s: no work for %.1fs; exiting", self.name, idle
                    )
                    return 0
                wait = reply.retry_after or self.poll_interval
                time.sleep(wait)
                idle += wait
                continue
            idle = 0.0
            try:
                self._serve(reply)
                self.leases_served += 1
            except _LeaseAbandoned as exc:
                logger.warning(
                    "%s abandoned lease %d: %s", self.name, reply.lease_id, exc
                )
                if exc.fatal:
                    return KILL_EXIT_CODE
            except ConnectionError as exc:
                # Coordinator unreachable mid-lease (partition): abandon and
                # keep polling — request_lease retries with backoff until the
                # partition heals, and the lease book re-leases what is left.
                logger.warning(
                    "%s lost the coordinator serving lease %d (%s); abandoning",
                    self.name, reply.lease_id, exc,
                )

    # ------------------------------------------------------------------
    # Lease service
    # ------------------------------------------------------------------
    def _resolve(self, scenario: Scenario, images_count: int):
        if self.resolver is not None:
            return self.resolver(scenario)
        from repro.zoo import case_study_platform_spec

        platform_spec, case = case_study_platform_spec(
            scenario.model.case_spec(),
            platform_config=scenario.platform_config(),
            cache_dir=self.cache_dir,
        )
        images = case.dataset.test_images[:images_count]
        labels = case.dataset.test_labels[:images_count]
        return platform_spec, images, labels

    def _platform_for(self, scenario: Scenario, grant: LeaseGrant):
        import json as _json

        key = (
            _json.dumps(scenario.model.to_dict(), sort_keys=True),
            _json.dumps(scenario.platform.to_dict(), sort_keys=True),
            grant.images,
            grant.batch_size,
        )
        entry = self._platforms.get(key)
        if entry is None:
            spec, images, labels = self._resolve(scenario, grant.images)
            platform = spec.build()
            platform.reset_caches()
            baseline = platform.baseline_accuracy(
                images, labels, batch_size=grant.batch_size
            )
            entry = (platform, baseline, platform.inferences_per_second(), images, labels)
            self._platforms[key] = entry
        return entry

    def _serve(self, grant: LeaseGrant) -> None:
        scenario = scenario_from_wire(grant.scenario)
        logger.info(
            "%s serving job %s lease %d attempt %d: %s, %d trial(s)",
            self.name, grant.job_id, grant.lease_id, grant.attempt,
            scenario.scenario_id, len(grant.indices),
        )
        stale = threading.Event()
        stop_beating = threading.Event()
        beater = threading.Thread(
            target=self._beat,
            args=(grant, stale, stop_beating),
            name=f"{self.name}-heartbeat",
            daemon=True,
        )
        # Beats must flow before the platform resolve: a cold node's first
        # lease builds (possibly trains) the model, which can take far
        # longer than the heartbeat timeout — without a beater the
        # coordinator would reclaim the lease mid-build every time.
        beater.start()
        try:
            platform, baseline, ips, images, labels = self._platform_for(
                scenario, grant
            )
            strategy = scenario.build_strategy()
            config = CampaignConfig(
                batch_size=grant.batch_size,
                seed=grant.seed,
                fused_trials=grant.fused_trials,
            )
            chaos_events = (
                list(self.chaos.for_worker(self.node_id, grant.attempt))
                if self.chaos is not None
                else []
            )
            # First batch carries the campaign meta (baseline, throughput,
            # actual image count) — the fleet analogue of the local worker's
            # "meta" message, sent before any trial runs.
            self._post(
                grant,
                [],
                stale,
                baseline_accuracy=baseline,
                inferences_per_second=ips,
                num_images=int(len(labels)),
            )
            pending: list[dict] = []
            self._strike(chaos_events, 0, grant, pending, stale)
            rng = SeededRNG(grant.seed)
            pairs = [
                (index, strategy.trial_at(platform.universe, rng, index))
                for index in grant.indices
            ]
            emitted = 0
            for record in _records_for_pairs(
                platform, pairs, baseline, images, labels, config
            ):
                pending.append(record.to_dict())
                emitted += 1
                self._strike(chaos_events, emitted, grant, pending, stale)
                if len(pending) >= self.batch_records:
                    self._post(grant, pending, stale)
                    pending = []
            if pending:
                self._post(grant, pending, stale)
            ack = self.client.complete(
                LeaseComplete(
                    node_id=self.node_id,
                    job_id=grant.job_id,
                    lease_id=grant.lease_id,
                    attempt=grant.attempt,
                    ok=True,
                )
            )
            if not ack.accepted:
                raise _LeaseAbandoned(
                    "completion rejected: lease was reclaimed", fatal=False
                )
        except (_LeaseAbandoned, ConnectionError):
            raise
        except ServiceError as exc:
            # The coordinator understood and refused (e.g. the job failed
            # under it); nothing to report back, just drop the lease.
            raise _LeaseAbandoned(str(exc), fatal=False) from exc
        except Exception:
            error = traceback.format_exc()
            logger.exception(
                "%s failed serving lease %d", self.name, grant.lease_id
            )
            self.client.complete(
                LeaseComplete(
                    node_id=self.node_id,
                    job_id=grant.job_id,
                    lease_id=grant.lease_id,
                    attempt=grant.attempt,
                    ok=False,
                    error=error,
                )
            )
        finally:
            stop_beating.set()
            beater.join(timeout=5.0)

    def _post(self, grant: LeaseGrant, records: list[dict], stale, **meta) -> None:
        if stale.is_set():
            raise _LeaseAbandoned("lease token went stale", fatal=False)
        ack = self.client.post_records(
            RecordBatch(
                node_id=self.node_id,
                job_id=grant.job_id,
                lease_id=grant.lease_id,
                attempt=grant.attempt,
                scenario_index=grant.scenario_index,
                records=tuple(records),
                **meta,
            )
        )
        if not ack.current:
            stale.set()
            raise _LeaseAbandoned("lease token went stale", fatal=False)

    def _strike(self, events, emitted: int, grant, pending: list, stale) -> None:
        """Fire chaos events scheduled at ``emitted`` records (fleet
        semantics: kill/hang = this node falls silent; its already-produced
        records are flushed first, exactly like ChaosMonkey's queue flush)."""
        while events and events[0].after_records <= emitted:
            event = events.pop(0)
            if event.action == "delay":
                logger.info("chaos: %s delaying %.3fs", self.name, event.seconds)
                time.sleep(event.seconds)
                continue
            try:
                if pending:
                    self._post(grant, list(pending), stale)
                    pending.clear()
            except (ConnectionError, _LeaseAbandoned):  # pragma: no cover
                pass  # a dying node's flush is best-effort, like a real crash
            if event.action == "kill" and self.hard_kill:
                logger.info("chaos: %s dying hard", self.name)
                os._exit(KILL_EXIT_CODE)
            verb = "hanging" if event.action == "hang" else "dying"
            logger.info("chaos: %s %s (thread mode)", self.name, verb)
            raise _LeaseAbandoned(
                f"chaos {event.action} after {emitted} record(s)", fatal=True
            )

    def _beat(self, grant: LeaseGrant, stale, stop_beating) -> None:
        while not stop_beating.wait(self.heartbeat_interval):
            if stale.is_set():
                return
            try:
                ack = self._hb_client.heartbeat(
                    Heartbeat(
                        node_id=self.node_id,
                        job_id=grant.job_id,
                        lease_id=grant.lease_id,
                        attempt=grant.attempt,
                    )
                )
            except (ConnectionError, ServiceError):
                # Unreachable or refused: the beat is simply missed; the
                # serving path will discover staleness at its next post.
                continue
            if not ack.current:
                stale.set()
                return
