"""HTTP client for the fleet protocol: bounded retries, timeouts, jitter.

Every call a worker or submitter makes to the coordinator goes through
:class:`HttpClient`, which wraps stdlib :mod:`urllib.request` with the
failure semantics fleet recovery depends on:

* a **timeout** on every request (a partitioned coordinator can never hang
  a node forever);
* **bounded retries** with the same capped exponential backoff the lease
  supervisor uses (:func:`repro.core.supervisor.backoff_delay`), plus a
  deterministic seeded jitter so a reconnecting fleet does not stampede;
* a hard distinction between *transport* failures (connection refused,
  reset, timeout, 5xx, torn response — retried: the chaos plan's ``drop``
  and ``partition`` events manufacture exactly these) and *protocol*
  rejections (4xx — raised immediately as :class:`ServiceError`; retrying
  a request the coordinator understood and refused cannot help).

:class:`CoordinatorClient` layers the typed endpoint methods on top,
parsing every reply through :func:`repro.service.protocol.parse_message`
so malformed responses fail loudly at the boundary.
"""

from __future__ import annotations

import json
import socket
import time
from http.client import HTTPException
from urllib import error as urllib_error
from urllib import request as urllib_request

from repro.core.supervisor import backoff_delay
from repro.service.protocol import (
    BatchAck,
    CompleteAck,
    Heartbeat,
    HeartbeatAck,
    JobAccepted,
    JobStatus,
    JobSubmit,
    LeaseComplete,
    LeaseGrant,
    LeaseRequest,
    Message,
    NoWork,
    RecordBatch,
    Register,
    Registered,
    WireError,
    parse_message,
)
from repro.utils.logging import get_logger
from repro.utils.rng import SeededRNG

logger = get_logger(__name__)

#: Exceptions that mean "the bytes did not make it" and are worth retrying.
TRANSPORT_ERRORS = (
    urllib_error.URLError,   # includes connection refused / reset wrappers
    HTTPException,           # includes RemoteDisconnected / BadStatusLine
    ConnectionError,
    socket.timeout,
    TimeoutError,
    json.JSONDecodeError,    # a torn/empty response body
)


class ServiceError(RuntimeError):
    """The coordinator rejected the request (4xx); retrying cannot help."""

    def __init__(self, status: int, detail: str):
        self.status = status
        self.detail = detail
        super().__init__(f"coordinator rejected request ({status}): {detail}")


class HttpClient:
    """One coordinator endpoint plus the retry/timeout/backoff policy."""

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 10.0,
        retries: int = 5,
        backoff: float = 0.2,
        jitter_seed: int = 0,
    ):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        if backoff < 0:
            raise ValueError("backoff must be >= 0")
        if "://" not in base_url:
            base_url = "http://" + base_url
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        #: Deterministic jitter stream (seeded per client, e.g. by node
        #: ordinal) — decorrelates reconnect storms without wall-clock or
        #: PID randomness, so failure tests replay identically.
        self._jitter = SeededRNG(jitter_seed).stream("http-jitter")

    def call(self, path: str, message: Message | None = None, method: str | None = None) -> dict:
        """POST ``message`` (or GET when ``None``) and decode the JSON reply."""
        payload = (
            None if message is None else json.dumps(message.to_wire()).encode("utf-8")
        )
        last: Exception | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                delay = backoff_delay(self.backoff, attempt - 1)
                delay += float(self._jitter.random()) * self.backoff
                time.sleep(delay)
            try:
                return self._once(path, payload, method)
            except ServiceError:
                raise
            except TRANSPORT_ERRORS as exc:
                last = exc
                logger.debug(
                    "transient failure calling %s%s (attempt %d/%d): %s",
                    self.base_url, path, attempt + 1, self.retries + 1, exc,
                )
        raise ConnectionError(
            f"coordinator at {self.base_url} unreachable after "
            f"{self.retries + 1} attempt(s): {last}"
        )

    def _once(self, path: str, payload: bytes | None, method: str | None) -> dict:
        request = urllib_request.Request(
            self.base_url + path,
            data=payload,
            headers={"Content-Type": "application/json"},
            method=method or ("POST" if payload is not None else "GET"),
        )
        try:
            with urllib_request.urlopen(request, timeout=self.timeout) as response:
                body = response.read().decode("utf-8")
        except urllib_error.HTTPError as exc:
            try:
                detail = exc.read().decode("utf-8", errors="replace").strip()
            except OSError:  # pragma: no cover - body already consumed
                detail = ""
            if 400 <= exc.code < 500:
                raise ServiceError(exc.code, detail or exc.reason) from None
            raise  # 5xx: transient server-side trouble, retried by call()
        return json.loads(body)


class CoordinatorClient:
    """Typed endpoint methods over :class:`HttpClient`."""

    def __init__(self, base_url: str, **http_kwargs):
        self.http = HttpClient(base_url, **http_kwargs)

    def _expect(self, data: dict, *types: type[Message]) -> Message:
        reply = parse_message(data)
        if not isinstance(reply, types):
            raise WireError(
                f"coordinator replied with {reply.TYPE!r}, expected "
                f"{'/'.join(t.TYPE for t in types)}"
            )
        return reply

    def healthz(self) -> dict:
        return self.http.call("/healthz")

    def register(self, name: str) -> Registered:
        return self._expect(self.http.call("/register", Register(name=name)), Registered)

    def request_lease(self, node_id: int) -> LeaseGrant | NoWork:
        return self._expect(
            self.http.call("/lease", LeaseRequest(node_id=node_id)), LeaseGrant, NoWork
        )

    def post_records(self, batch: RecordBatch) -> BatchAck:
        return self._expect(self.http.call("/records", batch), BatchAck)

    def heartbeat(self, beat: Heartbeat) -> HeartbeatAck:
        return self._expect(self.http.call("/heartbeat", beat), HeartbeatAck)

    def complete(self, done: LeaseComplete) -> CompleteAck:
        return self._expect(self.http.call("/complete", done), CompleteAck)

    def submit_job(self, spec: dict) -> JobAccepted:
        return self._expect(self.http.call("/jobs", JobSubmit(spec=spec)), JobAccepted)

    def job_status(self, job_id: str) -> JobStatus:
        return self._expect(self.http.call(f"/jobs/{job_id}"), JobStatus)
