"""The campaign coordinator: an HTTP service over the fleet lease book.

Stdlib :class:`~http.server.ThreadingHTTPServer` only — zero new
dependencies.  Each request handler thread parses one wire message,
takes the coordinator lock, applies the transition to the owning
:class:`~repro.service.jobs.FleetJob`, and replies; a monitor thread
wakes periodically to reclaim leases whose heartbeats went silent.

The server speaks HTTP/1.0 (one connection per request) on purpose:
returning from a handler *without writing a response* closes the socket,
which is exactly how the network chaos engine materialises ``drop`` and
``partition`` events — the client sees a torn connection, a transport
error, and its retry/backoff path, not a tidy error status it could
special-case.  ``slow-link`` sleeps outside the lock (a slow wire must
not stall the whole fleet) and ``dup-delivery`` dispatches idempotent
messages twice, proving the merge tolerates replayed deliveries.

All chaos is server-side and keyed on (node ordinal, logical request
ordinal), so failure tests replay identically with no wall-clock or
PID randomness.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.core.chaos import NetworkChaos, NetworkChaosPlan
from repro.core.sweep import ExperimentSpec
from repro.service.jobs import JOB_DONE, JOB_FAILED, FleetJob
from repro.service.protocol import (
    BatchAck,
    CompleteAck,
    Heartbeat,
    HeartbeatAck,
    JobAccepted,
    JobSubmit,
    LeaseComplete,
    LeaseRequest,
    Message,
    NoWork,
    Register,
    Registered,
    RecordBatch,
    WireError,
    parse_message,
)
from repro.utils.logging import get_logger
from repro.utils.telemetry import TELEMETRY

logger = get_logger(__name__)

#: Message types that are safe to dispatch twice under ``dup-delivery``
#: chaos: replaying them must merge to the same state (the point of the
#: event).  Lease requests are excluded — duplicating a grant would
#: strand a lease on a phantom worker, which is a *different* failure
#: (covered by kill/partition chaos), not duplicate delivery.
_IDEMPOTENT_TYPES = (RecordBatch, Heartbeat, LeaseComplete)


class _BadRequest(ValueError):
    """Protocol-level rejection; becomes a 400 (the client will not retry)."""


class CampaignCoordinator:
    """Owns the node registry, the job table and the HTTP server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        artifacts_dir: Path | str = "fleet-artifacts",
        heartbeat_interval: float = 1.0,
        heartbeat_timeout: float = 10.0,
        shard_size: int = 8,
        max_shard_retries: int = 2,
        retry_backoff: float = 0.25,
        poison_policy: str = "raise",
        fused_trials: int = 8,
        net_chaos: NetworkChaosPlan | None = None,
        clock=time.monotonic,
    ):
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if heartbeat_timeout <= heartbeat_interval:
            raise ValueError(
                "heartbeat_timeout must exceed heartbeat_interval (a node is "
                "declared dead only after missing multiple beats)"
            )
        self.host = host
        self.artifacts_dir = Path(artifacts_dir)
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.shard_size = shard_size
        self.max_shard_retries = max_shard_retries
        self.retry_backoff = retry_backoff
        self.poison_policy = poison_policy
        self.fused_trials = fused_trials
        self.clock = clock
        self.chaos = NetworkChaos(net_chaos) if net_chaos is not None else None
        self._lock = threading.RLock()
        self.nodes: dict[int, dict] = {}
        self.jobs: dict[str, FleetJob] = {}
        self._next_node_id = 0
        self._next_job_number = 0
        self._stop = threading.Event()
        self._monitor: threading.Thread | None = None
        self._serve_thread: threading.Thread | None = None

        coordinator = self

        class Handler(BaseHTTPRequestHandler):
            # HTTP/1.0: one connection per request, so "no response" =
            # closed socket = the client's transport-error path.
            protocol_version = "HTTP/1.0"

            def log_message(self, fmt, *args):  # noqa: A002 - stdlib signature
                logger.debug("http: " + fmt, *args)

            def do_GET(self):
                coordinator._handle_get(self)

            def do_POST(self):
                coordinator._handle_post(self)

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self.port = self._server.server_address[1]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Serve in background threads (used by tests and ``repro serve``)."""
        self._serve_thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="coordinator-http",
            daemon=True,
        )
        self._serve_thread.start()
        self._start_monitor()
        logger.info("coordinator listening on %s", self.url)

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``repro serve`` foreground path)."""
        self._start_monitor()
        logger.info("coordinator listening on %s", self.url)
        try:
            self._server.serve_forever(poll_interval=0.05)
        finally:
            self.shutdown()

    def _start_monitor(self) -> None:
        if self._monitor is not None:
            return
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="coordinator-monitor", daemon=True
        )
        self._monitor.start()

    def shutdown(self) -> None:
        self._stop.set()
        self._server.shutdown()
        self._server.server_close()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None

    def _monitor_loop(self) -> None:
        period = min(0.25, self.heartbeat_timeout / 4)
        while not self._stop.wait(period):
            with self._lock:
                for job in self.jobs.values():
                    job.check_timeouts()

    # ------------------------------------------------------------------
    # Job table
    # ------------------------------------------------------------------
    def submit(self, spec: ExperimentSpec) -> str:
        """Queue a sweep spec; returns its job id (also used by tests)."""
        with self._lock:
            job_id = f"job-{self._next_job_number:04d}"
            self._next_job_number += 1
            job = FleetJob(
                job_id,
                spec,
                artifacts_dir=self.artifacts_dir / job_id,
                shard_size=self.shard_size,
                max_retries=self.max_shard_retries,
                backoff=self.retry_backoff,
                poison_policy=self.poison_policy,
                heartbeat_timeout=self.heartbeat_timeout,
                fused_trials=self.fused_trials,
                clock=self.clock,
            )
            self.jobs[job_id] = job
        TELEMETRY.event(
            "job.submit",
            job=job_id,
            scenarios=len(job.scenarios),
            trials=sum(state.total_trials for state in job.scenarios),
        )
        logger.info(
            "job %s queued: %d scenario(s), %d lease(s)",
            job_id, len(job.scenarios), len(job.leases),
        )
        return job_id

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    def _handle_get(self, handler: BaseHTTPRequestHandler) -> None:
        path = handler.path.rstrip("/") or "/"
        try:
            if path == "/healthz":
                with self._lock:
                    payload = {
                        "status": "ok",
                        "nodes": len(self.nodes),
                        "jobs": {
                            job_id: job.state for job_id, job in self.jobs.items()
                        },
                    }
                self._reply(handler, 200, payload)
                return
            if path == "/jobs":
                with self._lock:
                    payload = {
                        "jobs": [
                            job.status(nodes=len(self.nodes)).to_wire()
                            for job in self.jobs.values()
                        ]
                    }
                self._reply(handler, 200, payload)
                return
            if path.startswith("/jobs/"):
                job_id = path[len("/jobs/") :]
                with self._lock:
                    job = self.jobs.get(job_id)
                    if job is None:
                        raise _BadRequest(f"unknown job {job_id!r}")
                    payload = job.status(nodes=len(self.nodes)).to_wire()
                self._reply(handler, 200, payload)
                return
            self._reply(handler, 404, {"error": f"no such endpoint: {path}"})
        except _BadRequest as exc:
            self._reply(handler, 404, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - must not kill the handler thread
            logger.exception("GET %s failed", path)
            self._reply(handler, 500, {"error": str(exc)})

    def _handle_post(self, handler: BaseHTTPRequestHandler) -> None:
        try:
            length = int(handler.headers.get("Content-Length") or 0)
            body = handler.rfile.read(length)
            message = parse_message(json.loads(body.decode("utf-8")))
        except (WireError, ValueError, UnicodeDecodeError) as exc:
            self._reply(handler, 400, {"error": f"malformed request: {exc}"})
            return

        # Network chaos, keyed on the sender's node ordinal.  A struck
        # drop/partition returns *without responding*: HTTP/1.0 closes the
        # socket and the client exercises its transport-retry path.
        node = getattr(message, "node_id", None)
        if self.chaos is not None and node is not None:
            events = self.chaos.on_request(node)
            for event in events:
                if event.action == "slow-link":
                    time.sleep(event.seconds)
            if any(e.action in ("drop", "partition") for e in events):
                logger.info(
                    "chaos: dropping %s from node %d", message.TYPE, node
                )
                return
            if any(e.action == "dup-delivery" for e in events) and isinstance(
                message, _IDEMPOTENT_TYPES
            ):
                logger.info(
                    "chaos: duplicating %s from node %d", message.TYPE, node
                )
                try:
                    self._dispatch(message)  # first delivery; reply comes below
                except _BadRequest:
                    pass

        try:
            reply = self._dispatch(message)
        except _BadRequest as exc:
            self._reply(handler, 400, {"error": str(exc)})
            return
        except Exception as exc:  # noqa: BLE001 - must not kill the handler thread
            logger.exception("handling %s failed", message.TYPE)
            self._reply(handler, 500, {"error": str(exc)})
            return
        self._reply(handler, 200, reply.to_wire())

    @staticmethod
    def _reply(handler: BaseHTTPRequestHandler, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        try:
            handler.send_response(status)
            handler.send_header("Content-Type", "application/json")
            handler.send_header("Content-Length", str(len(body)))
            handler.end_headers()
            handler.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client gave up (or was killed) mid-reply; its retry re-asks

    # ------------------------------------------------------------------
    # Message dispatch (the actual state transitions)
    # ------------------------------------------------------------------
    def _dispatch(self, message: Message) -> Message:
        if isinstance(message, Register):
            return self._on_register(message)
        if isinstance(message, LeaseRequest):
            return self._on_lease(message)
        if isinstance(message, RecordBatch):
            return self._on_records(message)
        if isinstance(message, Heartbeat):
            return self._on_heartbeat(message)
        if isinstance(message, LeaseComplete):
            return self._on_complete(message)
        if isinstance(message, JobSubmit):
            return self._on_submit(message)
        raise _BadRequest(f"coordinator does not accept {message.TYPE!r} messages")

    def _on_register(self, message: Register) -> Registered:
        with self._lock:
            node_id = self._next_node_id
            self._next_node_id += 1
            self.nodes[node_id] = {"name": message.name, "registered_at": self.clock()}
        TELEMETRY.event("node.register", node=node_id, node_name=message.name)
        logger.info("node %d registered (%s)", node_id, message.name)
        return Registered(
            node_id=node_id,
            heartbeat_interval=self.heartbeat_interval,
            heartbeat_timeout=self.heartbeat_timeout,
        )

    def _require_node(self, node_id: int) -> None:
        if node_id not in self.nodes:
            raise _BadRequest(f"unknown node {node_id}; register first")

    def _require_job(self, job_id: str) -> FleetJob:
        job = self.jobs.get(job_id)
        if job is None:
            raise _BadRequest(f"unknown job {job_id!r}")
        return job

    def _on_lease(self, message: LeaseRequest) -> Message:
        with self._lock:
            self._require_node(message.node_id)
            for job in self.jobs.values():
                if job.state in (JOB_DONE, JOB_FAILED):
                    continue
                grant = job.grant(message.node_id)
                if grant is not None:
                    TELEMETRY.event(
                        "lease.grant",
                        job=grant.job_id,
                        lease=grant.lease_id,
                        attempt=grant.attempt,
                        node=message.node_id,
                        trials=len(grant.indices),
                    )
                    logger.info(
                        "job %s lease %d (attempt %d, %d trial(s)) -> node %d",
                        grant.job_id, grant.lease_id, grant.attempt,
                        len(grant.indices), message.node_id,
                    )
                    return grant
        return NoWork(retry_after=self.heartbeat_interval / 2)

    def _on_records(self, message: RecordBatch) -> BatchAck:
        with self._lock:
            self._require_node(message.node_id)
            job = self._require_job(message.job_id)
            try:
                accepted, current = job.add_records(
                    message.lease_id,
                    message.attempt,
                    message.scenario_index,
                    message.records,
                    baseline=message.baseline_accuracy,
                    ips=message.inferences_per_second,
                    num_images=message.num_images,
                )
            except ValueError as exc:
                raise _BadRequest(str(exc)) from None
        return BatchAck(accepted=accepted, current=current)

    def _on_heartbeat(self, message: Heartbeat) -> HeartbeatAck:
        with self._lock:
            self._require_node(message.node_id)
            job = self._require_job(message.job_id)
            current = job.heartbeat(message.lease_id, message.attempt)
            self.nodes[message.node_id]["last_seen"] = self.clock()
        return HeartbeatAck(current=current)

    def _on_complete(self, message: LeaseComplete) -> CompleteAck:
        with self._lock:
            self._require_node(message.node_id)
            job = self._require_job(message.job_id)
            accepted = job.complete(
                message.lease_id, message.attempt, message.ok, message.error
            )
        return CompleteAck(accepted=accepted)

    def _on_submit(self, message: JobSubmit) -> JobAccepted:
        try:
            spec = ExperimentSpec.from_dict(dict(message.spec))
        except (ValueError, KeyError, TypeError) as exc:
            raise _BadRequest(f"invalid experiment spec: {exc}") from None
        return JobAccepted(job_id=self.submit(spec))
