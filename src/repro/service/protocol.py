"""Wire protocol of the campaign fleet: typed, validated JSON messages.

Every byte that crosses the coordinator/worker boundary is one of the
frozen dataclasses below, serialised as a JSON object whose ``type`` key
names the message.  Both ends validate on receipt — an unknown type, an
unknown key, a missing field or an out-of-domain value raises
:class:`WireError` instead of propagating garbage into the lease book —
and every message round-trips exactly::

    parse_message(json.loads(json.dumps(msg.to_wire()))) == msg

(the Hypothesis suite in ``tests/test_service_protocol.py`` enforces this
for every message type).

Conventions
-----------

* ``attempt`` fields carry the **token attempt** — the same value a local
  shard worker is tagged with (first service of a lease is attempt ``0``),
  so the fleet lease book and :class:`repro.core.supervisor.ShardLease`
  speak one dialect.
* Floats must be finite: JSON has no portable NaN/Inf, and a baseline of
  NaN would silently break the determinism cross-check.
* Record payloads travel as the plain dicts of
  :meth:`repro.core.results.TrialRecord.to_dict`, so checkpoint lines and
  wire batches share one serialisation.
"""

from __future__ import annotations

import math
from dataclasses import MISSING, dataclass, field, fields
from typing import Any, ClassVar


class WireError(ValueError):
    """A wire message failed structural validation."""


#: Lifecycle states a job status message may report.
JOB_STATES = ("queued", "running", "done", "failed")


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _check_int(owner: str, name: str, value: Any, minimum: int = 0) -> None:
    if not _is_int(value) or value < minimum:
        raise WireError(f"{owner}.{name} must be an int >= {minimum}, got {value!r}")


def _check_str(owner: str, name: str, value: Any, *, allow_empty: bool = True) -> None:
    if not isinstance(value, str) or (not allow_empty and not value):
        raise WireError(f"{owner}.{name} must be a {'' if allow_empty else 'non-empty '}string, "
                        f"got {value!r}")


def _check_bool(owner: str, name: str, value: Any) -> None:
    if not isinstance(value, bool):
        raise WireError(f"{owner}.{name} must be a bool, got {value!r}")


def _check_float(owner: str, name: str, value: Any, *, minimum: float | None = None) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)) or not math.isfinite(value):
        raise WireError(f"{owner}.{name} must be a finite number, got {value!r}")
    if minimum is not None and value < minimum:
        raise WireError(f"{owner}.{name} must be >= {minimum}, got {value!r}")


def _check_opt_float(owner: str, name: str, value: Any) -> None:
    if value is not None:
        _check_float(owner, name, value)


def _check_dict(owner: str, name: str, value: Any) -> None:
    if not isinstance(value, dict):
        raise WireError(f"{owner}.{name} must be an object, got {type(value).__name__}")


@dataclass(frozen=True)
class Message:
    """Base of every wire message: symmetric to_wire/from_wire with checks."""

    TYPE: ClassVar[str] = ""

    def to_wire(self) -> dict:
        out: dict[str, Any] = {"type": self.TYPE}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            out[f.name] = value
        return out

    @classmethod
    def from_wire(cls, data: dict) -> "Message":
        if not isinstance(data, dict):
            raise WireError(f"wire message must be an object, got {type(data).__name__}")
        if data.get("type") != cls.TYPE:
            raise WireError(f"expected message type {cls.TYPE!r}, got {data.get('type')!r}")
        payload = {key: value for key, value in data.items() if key != "type"}
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise WireError(f"{cls.TYPE} message has unknown keys {sorted(unknown)}")
        required = {
            f.name
            for f in fields(cls)
            if f.default is MISSING and f.default_factory is MISSING
        }
        missing = required - set(payload)
        if missing:
            raise WireError(f"{cls.TYPE} message is missing keys {sorted(missing)}")
        return cls(**payload)


# ----------------------------------------------------------------------
# Node lifecycle
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Register(Message):
    """A worker node announcing itself to the coordinator."""

    TYPE = "register"
    name: str

    def __post_init__(self) -> None:
        _check_str(self.TYPE, "name", self.name)


@dataclass(frozen=True)
class Registered(Message):
    """Registration reply: the node's identity and heartbeat contract."""

    TYPE = "registered"
    node_id: int
    heartbeat_interval: float = 1.0
    heartbeat_timeout: float = 10.0

    def __post_init__(self) -> None:
        _check_int(self.TYPE, "node_id", self.node_id)
        _check_float(self.TYPE, "heartbeat_interval", self.heartbeat_interval, minimum=0.0)
        _check_float(self.TYPE, "heartbeat_timeout", self.heartbeat_timeout, minimum=0.0)


# ----------------------------------------------------------------------
# Leases
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LeaseRequest(Message):
    """A registered node asking for work."""

    TYPE = "lease-request"
    node_id: int

    def __post_init__(self) -> None:
        _check_int(self.TYPE, "node_id", self.node_id)


@dataclass(frozen=True)
class LeaseGrant(Message):
    """One shard range of one scenario, leased to one node.

    ``(lease_id, attempt)`` is the lease token the worker must tag every
    record batch, heartbeat and completion with; ``indices`` are the trial
    indices still remaining (a reclaimed lease re-grants only what its
    previous node left behind).
    """

    TYPE = "lease-grant"
    job_id: str
    scenario_index: int
    scenario: dict
    lease_id: int
    attempt: int
    indices: tuple = field(default_factory=tuple)
    seed: int = 0
    images: int = 64
    batch_size: int = 64
    fused_trials: int = 8

    def __post_init__(self) -> None:
        _check_str(self.TYPE, "job_id", self.job_id, allow_empty=False)
        _check_int(self.TYPE, "scenario_index", self.scenario_index)
        _check_dict(self.TYPE, "scenario", self.scenario)
        _check_int(self.TYPE, "lease_id", self.lease_id)
        _check_int(self.TYPE, "attempt", self.attempt)
        if not isinstance(self.indices, (list, tuple)):
            raise WireError(f"{self.TYPE}.indices must be an array, got {self.indices!r}")
        for index in self.indices:
            _check_int(self.TYPE, "indices[]", index)
        object.__setattr__(self, "indices", tuple(self.indices))
        _check_int(self.TYPE, "seed", self.seed, minimum=-(2**63))
        _check_int(self.TYPE, "images", self.images, minimum=1)
        _check_int(self.TYPE, "batch_size", self.batch_size, minimum=1)
        _check_int(self.TYPE, "fused_trials", self.fused_trials, minimum=1)


@dataclass(frozen=True)
class NoWork(Message):
    """Nothing leasable right now; ask again after ``retry_after`` seconds."""

    TYPE = "no-work"
    retry_after: float = 0.5

    def __post_init__(self) -> None:
        _check_float(self.TYPE, "retry_after", self.retry_after, minimum=0.0)


# ----------------------------------------------------------------------
# Record streaming
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RecordBatch(Message):
    """A batch of finished trial records from one lease attempt.

    The first batch of a lease carries the scenario meta the coordinator
    needs for the checkpoint header (``baseline_accuracy``,
    ``inferences_per_second``, ``num_images``) — the network twin of the
    local worker's ``meta`` queue message.
    """

    TYPE = "record-batch"
    node_id: int
    job_id: str
    lease_id: int
    attempt: int
    scenario_index: int
    records: tuple = field(default_factory=tuple)
    baseline_accuracy: float | None = None
    inferences_per_second: float | None = None
    num_images: int | None = None

    def __post_init__(self) -> None:
        _check_int(self.TYPE, "node_id", self.node_id)
        _check_str(self.TYPE, "job_id", self.job_id, allow_empty=False)
        _check_int(self.TYPE, "lease_id", self.lease_id)
        _check_int(self.TYPE, "attempt", self.attempt)
        _check_int(self.TYPE, "scenario_index", self.scenario_index)
        if not isinstance(self.records, (list, tuple)):
            raise WireError(f"{self.TYPE}.records must be an array, got {self.records!r}")
        for record in self.records:
            _check_dict(self.TYPE, "records[]", record)
        object.__setattr__(self, "records", tuple(self.records))
        _check_opt_float(self.TYPE, "baseline_accuracy", self.baseline_accuracy)
        _check_opt_float(self.TYPE, "inferences_per_second", self.inferences_per_second)
        if self.num_images is not None:
            _check_int(self.TYPE, "num_images", self.num_images, minimum=1)


@dataclass(frozen=True)
class BatchAck(Message):
    """Receipt of a record batch.  ``current=False`` tells the worker its
    lease was reclaimed (records were still merged — they are deterministic
    and keyed by index — but the node should stop serving the lease)."""

    TYPE = "batch-ack"
    accepted: int
    current: bool = True

    def __post_init__(self) -> None:
        _check_int(self.TYPE, "accepted", self.accepted)
        _check_bool(self.TYPE, "current", self.current)


# ----------------------------------------------------------------------
# Heartbeats and completion
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Heartbeat(Message):
    """Liveness signal for one lease attempt."""

    TYPE = "heartbeat"
    node_id: int
    job_id: str
    lease_id: int
    attempt: int

    def __post_init__(self) -> None:
        _check_int(self.TYPE, "node_id", self.node_id)
        _check_str(self.TYPE, "job_id", self.job_id, allow_empty=False)
        _check_int(self.TYPE, "lease_id", self.lease_id)
        _check_int(self.TYPE, "attempt", self.attempt)


@dataclass(frozen=True)
class HeartbeatAck(Message):
    """Whether the heartbeat's token still owns the lease."""

    TYPE = "heartbeat-ack"
    current: bool

    def __post_init__(self) -> None:
        _check_bool(self.TYPE, "current", self.current)


@dataclass(frozen=True)
class LeaseComplete(Message):
    """A node reporting the end of its lease service.

    ``ok=False`` is an explicit failure (the worker raised): the
    coordinator reclaims immediately instead of waiting out the heartbeat
    deadline, with ``error`` joining the lease's failure history.
    """

    TYPE = "lease-complete"
    node_id: int
    job_id: str
    lease_id: int
    attempt: int
    ok: bool = True
    error: str = ""

    def __post_init__(self) -> None:
        _check_int(self.TYPE, "node_id", self.node_id)
        _check_str(self.TYPE, "job_id", self.job_id, allow_empty=False)
        _check_int(self.TYPE, "lease_id", self.lease_id)
        _check_int(self.TYPE, "attempt", self.attempt)
        _check_bool(self.TYPE, "ok", self.ok)
        _check_str(self.TYPE, "error", self.error)


@dataclass(frozen=True)
class CompleteAck(Message):
    """Whether the completion was honoured (False = stale token)."""

    TYPE = "complete-ack"
    accepted: bool

    def __post_init__(self) -> None:
        _check_bool(self.TYPE, "accepted", self.accepted)


# ----------------------------------------------------------------------
# Jobs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobSubmit(Message):
    """A sweep spec (the raw dict a spec file parses to) to run as a job."""

    TYPE = "job-submit"
    spec: dict

    def __post_init__(self) -> None:
        _check_dict(self.TYPE, "spec", self.spec)


@dataclass(frozen=True)
class JobAccepted(Message):
    """The queued job's identity."""

    TYPE = "job-accepted"
    job_id: str

    def __post_init__(self) -> None:
        _check_str(self.TYPE, "job_id", self.job_id, allow_empty=False)


@dataclass(frozen=True)
class JobStatus(Message):
    """Progress snapshot of one job."""

    TYPE = "job-status"
    job_id: str
    state: str
    scenarios_total: int = 0
    scenarios_done: int = 0
    trials_total: int = 0
    trials_done: int = 0
    leases: int = 0
    reclaimed: int = 0
    nodes: int = 0
    error: str = ""
    artifacts_dir: str = ""

    def __post_init__(self) -> None:
        _check_str(self.TYPE, "job_id", self.job_id, allow_empty=False)
        if self.state not in JOB_STATES:
            raise WireError(
                f"{self.TYPE}.state must be one of {'/'.join(JOB_STATES)}, got {self.state!r}"
            )
        for name in ("scenarios_total", "scenarios_done", "trials_total",
                     "trials_done", "leases", "reclaimed", "nodes"):
            _check_int(self.TYPE, name, getattr(self, name))
        _check_str(self.TYPE, "error", self.error)
        _check_str(self.TYPE, "artifacts_dir", self.artifacts_dir)


#: Every concrete message class, keyed by its wire ``type``.
MESSAGE_TYPES: dict[str, type[Message]] = {
    cls.TYPE: cls
    for cls in (
        Register, Registered, LeaseRequest, LeaseGrant, NoWork,
        RecordBatch, BatchAck, Heartbeat, HeartbeatAck,
        LeaseComplete, CompleteAck, JobSubmit, JobAccepted, JobStatus,
    )
}


def parse_message(data: Any) -> Message:
    """Dispatch a decoded JSON object to its message class, validating it."""
    if not isinstance(data, dict):
        raise WireError(f"wire message must be an object, got {type(data).__name__}")
    kind = data.get("type")
    cls = MESSAGE_TYPES.get(kind)
    if cls is None:
        raise WireError(f"unknown wire message type {kind!r}")
    return cls.from_wire(data)
