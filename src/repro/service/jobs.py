"""Coordinator-side job state: scenarios, network leases, merge, stopping.

A :class:`FleetJob` is one sweep spec executed by the fleet.  It carries
the same lease state machine as local execution — leases are
:class:`~repro.core.supervisor.ShardLease` instances (WAITING → RUNNING →
DONE, with WAITING backoff between reclaims and POISON after exhausted
retries), tokens are ``(lease_id, attempt)``, and
:func:`~repro.core.supervisor.backoff_delay` paces re-attempts — but the
"worker" behind a lease is a remote node, progress is heartbeats and
record batches instead of queue messages, and reclaim triggers on a missed
heartbeat deadline or an explicit failure report instead of a dead child
process.

Determinism contract (the reason the merge below is a plain index-keyed
dict): trials are pure functions of ``(seed, index)``, so

* records are accepted from **any** attempt, even one already reclaimed —
  a batch that raced the reclaim carries exactly the bytes the re-run
  would produce;
* identical duplicates (dup-delivery, re-leased overlap) collapse silently;
* *conflicting* duplicates mean the invariant is broken and fail the whole
  job loudly rather than merging garbage;
* the finished artifacts — per-scenario checkpoint JSONL and the merged
  ``sweep.jsonl`` — are byte-identical to a local ``--workers 1`` run of
  the same spec, which CI's fleet gate asserts with ``cmp``.

Adaptive stopping happens at round barriers: the next round's leases open
only once the current round is fully merged and the plan's
``should_stop`` (a pure function of complete rounds) says to continue —
the same rule, evaluated at the same points, as local execution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.core.parallel import checkpoint_header_line, checkpoint_record_line
from repro.core.results import CampaignResult, TrialRecord
from repro.core.supervisor import LeaseState, RecoveryLog, ShardLease, backoff_delay
from repro.core.sweep import (
    ExperimentSpec,
    FaultAxis,
    ModelAxis,
    PlatformAxis,
    Scenario,
    ScenarioResult,
    StrategyAxis,
    SweepResult,
)
from repro.faults.sites import FaultUniverse
from repro.service.protocol import JobStatus, LeaseGrant
from repro.utils.durable import durable_write_text
from repro.utils.jsonsafe import dump_json_safe
from repro.utils.logging import get_logger
from repro.utils.telemetry import TELEMETRY

logger = get_logger(__name__)

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"

#: Trials per network lease (contiguous ranges; merge is index-keyed, so
#: the chunking cannot influence records, only scheduling granularity).
DEFAULT_SHARD_SIZE = 8


def scenario_to_wire(scenario: Scenario) -> dict:
    """Serialise a scenario's axes for a lease grant."""
    return {
        "id": scenario.scenario_id,
        "cell": list(scenario.cell),
        "model": scenario.model.to_dict(),
        "fault": scenario.fault.to_dict(),
        "strategy": scenario.strategy.to_dict(),
        "platform": scenario.platform.to_dict(),
    }


def scenario_from_wire(data: dict) -> Scenario:
    """Rebuild a :class:`Scenario` from :func:`scenario_to_wire` output."""
    if not isinstance(data, dict):
        raise ValueError(f"wire scenario must be an object, got {type(data).__name__}")
    try:
        model = ModelAxis.from_dict(dict(data["model"]))
        fault = FaultAxis.from_dict(dict(data["fault"]))
        strategy = StrategyAxis.from_dict(dict(data["strategy"]))
        platform = PlatformAxis.from_dict(dict(data["platform"]))
    except KeyError as exc:
        raise ValueError(f"wire scenario is missing axis {exc}") from None
    cell = tuple(int(v) for v in data.get("cell", (0, 0, 0, 0)))
    scenario_id = data.get(
        "id", f"{model.name}/{fault.name}/{strategy.name}/{platform.name}"
    )
    return Scenario(
        scenario_id=scenario_id,
        model=model,
        fault=fault,
        strategy=strategy,
        platform=platform,
        cell=cell,
    )


def _chunk(indices: list[int], size: int) -> list[list[int]]:
    """Contiguous shards of at most ``size`` trials (``[[]]`` when empty,
    so even a zero-trial scenario gets one lease to fetch its baseline)."""
    if not indices:
        return [[]]
    return [indices[start : start + size] for start in range(0, len(indices), size)]


@dataclass
class NetworkLease(ShardLease):
    """A :class:`ShardLease` served by a remote node instead of a child
    process (``proc`` stays ``None``; liveness is heartbeat recency)."""

    scenario_index: int = 0
    node: int | None = None


@dataclass
class _ScenarioState:
    """Progress of one grid cell inside a fleet job."""

    scenario: Scenario
    strategy_name: str
    total_trials: int
    records: dict[int, TrialRecord] = field(default_factory=dict)
    baseline: float | None = None
    ips: float | None = None
    num_images: int | None = None
    #: Round bounds under an adaptive plan (``None`` = fixed budget).
    bounds: list[tuple[int, int]] | None = None
    completed_rounds: int = 0
    #: Trial-index bound of the campaign so far (adaptive: last barrier).
    stop_end: int = 0
    #: Lease ids currently open (WAITING or RUNNING) for this scenario.
    open_leases: set[int] = field(default_factory=set)
    done: bool = False


class FleetJob:
    """One sweep spec driven to completion by the fleet's lease book."""

    def __init__(
        self,
        job_id: str,
        spec: ExperimentSpec,
        *,
        artifacts_dir: Path | str,
        shard_size: int = DEFAULT_SHARD_SIZE,
        max_retries: int = 2,
        backoff: float = 0.25,
        poison_policy: str = "raise",
        heartbeat_timeout: float = 10.0,
        fused_trials: int = 8,
        clock: Callable[[], float] = time.monotonic,
    ):
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if poison_policy not in ("raise", "quarantine"):
            raise ValueError(
                f"poison_policy must be 'raise' or 'quarantine', got {poison_policy!r}"
            )
        self.job_id = job_id
        self.spec = spec
        self.artifacts_dir = Path(artifacts_dir)
        self.shard_size = shard_size
        self.max_retries = max_retries
        self.backoff = backoff
        self.poison_policy = poison_policy
        self.heartbeat_timeout = heartbeat_timeout
        self.fused_trials = fused_trials
        self.clock = clock
        self.state = JOB_QUEUED
        self.error = ""
        self.recovery = RecoveryLog()
        self.plan = spec.adaptive
        self.leases: dict[int, NetworkLease] = {}
        self._next_lease_id = 0
        self.scenarios: list[_ScenarioState] = []
        for scenario in spec.grid():
            strategy = scenario.build_strategy()
            universe = FaultUniverse(
                scenario.platform.num_macs, scenario.platform.muls_per_mac
            )
            total = strategy.expected_trials(universe)
            state = _ScenarioState(
                scenario=scenario, strategy_name=strategy.name, total_trials=total
            )
            if self.plan is not None:
                state.bounds = self.plan.round_bounds(self.plan.budget(total))
            self.scenarios.append(state)
        for index in range(len(self.scenarios)):
            self._open_next(index)

    # ------------------------------------------------------------------
    # Lease opening
    # ------------------------------------------------------------------
    def _open_shards(self, scenario_index: int, indices: list[int]) -> None:
        state = self.scenarios[scenario_index]
        for shard in _chunk(indices, self.shard_size):
            lease = NetworkLease(
                self._next_lease_id, shard, scenario_index=scenario_index
            )
            self._next_lease_id += 1
            self.leases[lease.lease_id] = lease
            state.open_leases.add(lease.lease_id)
            self.recovery.leases += 1

    def _open_next(self, scenario_index: int) -> None:
        """Open the scenario's next work unit (whole budget, or next round)."""
        state = self.scenarios[scenario_index]
        if state.bounds is None:
            self._open_shards(scenario_index, list(range(state.total_trials)))
            return
        if state.completed_rounds >= len(state.bounds):
            # A zero-round plan still needs one empty lease for the baseline.
            if not state.bounds and not state.records and state.baseline is None:
                self._open_shards(scenario_index, [])
                return
            self._finish_scenario(state)
            return
        start, end = state.bounds[state.completed_rounds]
        self._open_shards(scenario_index, list(range(start, end)))

    # ------------------------------------------------------------------
    # Worker-facing transitions (call under the coordinator's lock)
    # ------------------------------------------------------------------
    def grant(self, node_id: int) -> LeaseGrant | None:
        """Lease the oldest due WAITING shard to ``node_id``, if any."""
        now = self.clock()
        for lease_id in sorted(self.leases):
            lease = self.leases[lease_id]
            if lease.state is not LeaseState.WAITING or now < lease.retry_at:
                continue
            lease.attempt += 1
            self.recovery.attempts += 1
            lease.token = (lease.lease_id, lease.attempt - 1)
            lease.state = LeaseState.RUNNING
            lease.node = node_id
            lease.last_progress = now
            state = self.scenarios[lease.scenario_index]
            if self.state == JOB_QUEUED:
                self.state = JOB_RUNNING
            return LeaseGrant(
                job_id=self.job_id,
                scenario_index=lease.scenario_index,
                scenario=scenario_to_wire(state.scenario),
                lease_id=lease.lease_id,
                attempt=lease.attempt - 1,
                indices=tuple(sorted(lease.remaining)),
                seed=self.spec.seed,
                images=self.spec.images,
                batch_size=self.spec.batch_size,
                fused_trials=self.fused_trials,
            )
        return None

    def _current(self, lease: NetworkLease | None, attempt: int) -> bool:
        return (
            lease is not None
            and lease.state is LeaseState.RUNNING
            and lease.token == (lease.lease_id, attempt)
        )

    def add_records(
        self,
        lease_id: int,
        attempt: int,
        scenario_index: int,
        record_dicts,
        *,
        baseline: float | None = None,
        ips: float | None = None,
        num_images: int | None = None,
    ) -> tuple[int, bool]:
        """Merge a record batch; returns ``(accepted, token_still_current)``.

        Idempotent by construction: replaying the same batch (dup-delivery,
        a retried POST whose first copy did land) merges to the same state.
        """
        if not 0 <= scenario_index < len(self.scenarios):
            raise ValueError(
                f"job {self.job_id} has no scenario {scenario_index} "
                f"(0..{len(self.scenarios) - 1})"
            )
        state = self.scenarios[scenario_index]
        if baseline is not None:
            if state.baseline is None:
                state.baseline, state.ips = baseline, ips
            elif state.baseline != baseline:
                self._fail_job(
                    f"node-reported baseline {baseline!r} for scenario "
                    f"{state.scenario.scenario_id} disagrees with "
                    f"{state.baseline!r}; the platform or dataset is not "
                    f"deterministic across nodes, so fleet records cannot "
                    f"be trusted"
                )
                return 0, False
        if num_images is not None and state.num_images is None:
            state.num_images = num_images
        lease = self.leases.get(lease_id)
        accepted = 0
        for data in record_dicts:
            try:
                record = TrialRecord.from_dict(dict(data))
            except (TypeError, ValueError, KeyError) as exc:
                raise ValueError(f"malformed trial record on the wire: {exc}") from None
            existing = state.records.get(record.trial_index)
            if existing is None:
                state.records[record.trial_index] = record
                accepted += 1
            elif existing != record:
                self._fail_job(
                    f"trial {record.trial_index} of scenario "
                    f"{state.scenario.scenario_id} was reported twice with "
                    f"different contents; trials are pure functions of "
                    f"(seed, index), so conflicting duplicates mean the "
                    f"fleet's records cannot be trusted"
                )
                return accepted, False
            if lease is not None and lease.scenario_index == scenario_index:
                lease.remaining.discard(record.trial_index)
        current = self._current(lease, attempt)
        if current:
            lease.last_progress = self.clock()
        return accepted, current

    def heartbeat(self, lease_id: int, attempt: int) -> bool:
        lease = self.leases.get(lease_id)
        if not self._current(lease, attempt):
            return False
        lease.last_progress = self.clock()
        return True

    def complete(self, lease_id: int, attempt: int, ok: bool, error: str = "") -> bool:
        lease = self.leases.get(lease_id)
        if not self._current(lease, attempt):
            return False
        if not ok:
            self.recovery.worker_errors += 1
            self._fail_lease(lease, f"node reported failure:\n{error}")
            return True
        if lease.remaining:
            # Batches are merged before the completion is sent (the worker
            # posts in order over one logical stream), so trials still
            # unaccounted for were genuinely never delivered.
            self._fail_lease(
                lease,
                f"node completed lease {lease.lease_id} with "
                f"{len(lease.remaining)} trial(s) unaccounted for",
            )
            return True
        lease.state = LeaseState.DONE
        self._settle(lease)
        TELEMETRY.event(
            "lease.done", job=self.job_id, lease=lease.lease_id, attempt=lease.attempt
        )
        return True

    def check_timeouts(self) -> None:
        """Reclaim every RUNNING lease whose heartbeats went silent."""
        if self.state in (JOB_DONE, JOB_FAILED):
            return
        now = self.clock()
        for lease in list(self.leases.values()):
            if lease.state is not LeaseState.RUNNING:
                continue
            silent = now - lease.last_progress
            if silent > self.heartbeat_timeout:
                self.recovery.hung_workers += 1
                TELEMETRY.event(
                    "heartbeat.miss",
                    job=self.job_id,
                    lease=lease.lease_id,
                    node=lease.node,
                    silent_seconds=silent,
                )
                logger.warning(
                    "job %s lease %d: node %s silent for %.1fs (deadline %.1fs); reclaiming",
                    self.job_id, lease.lease_id, lease.node, silent, self.heartbeat_timeout,
                )
                self._fail_lease(
                    lease,
                    f"node {lease.node} missed the heartbeat deadline "
                    f"({self.heartbeat_timeout}s) — dead, partitioned or hung",
                )

    # ------------------------------------------------------------------
    # Failure / progression (mirrors LeaseSupervisor._fail)
    # ------------------------------------------------------------------
    def _fail_lease(self, lease: NetworkLease, reason: str) -> None:
        lease.failures.append(reason)
        lease.node = None
        retries_used = lease.attempt - 1
        if retries_used >= self.max_retries:
            self._poison(lease)
            return
        self.recovery.reclaimed += 1
        wait = backoff_delay(self.backoff, retries_used)
        lease.state = LeaseState.WAITING
        lease.retry_at = self.clock() + wait
        TELEMETRY.event(
            "lease.reclaim",
            job=self.job_id,
            lease=lease.lease_id,
            attempt=lease.attempt,
            remaining=len(lease.remaining),
            reason=reason.splitlines()[0],
            backoff_seconds=wait,
        )
        logger.warning(
            "job %s lease %d failed (attempt %d/%d): %s; re-leasing in %.2fs",
            self.job_id, lease.lease_id, lease.attempt, self.max_retries + 1,
            reason.splitlines()[0], wait,
        )

    def _poison(self, lease: NetworkLease) -> None:
        lease.state = LeaseState.POISON
        self.recovery.poison.append(
            {
                "lease": lease.lease_id,
                "scenario": self.scenarios[lease.scenario_index].scenario.scenario_id,
                "indices": sorted(lease.indices),
                "unfinished": sorted(lease.remaining),
                "attempts": lease.attempt,
                "failures": list(lease.failures),
            }
        )
        TELEMETRY.event(
            "lease.poison",
            job=self.job_id,
            lease=lease.lease_id,
            attempts=lease.attempt,
            unfinished=len(lease.remaining),
        )
        if self.poison_policy == "raise":
            detail = lease.failures[-1] if lease.failures else "unknown failure"
            self._fail_job(
                f"lease {lease.lease_id} of scenario "
                f"{self.scenarios[lease.scenario_index].scenario.scenario_id} "
                f"failed {lease.attempt} attempt(s) "
                f"({len(lease.remaining)} of {len(lease.indices)} trial(s) "
                f"unfinished).  Last failure:\n{detail}"
            )
            return
        logger.error(
            "job %s lease %d quarantined as poison after %d attempt(s)",
            self.job_id, lease.lease_id, lease.attempt,
        )
        self._settle(lease)

    def _fail_job(self, reason: str) -> None:
        if self.state in (JOB_DONE, JOB_FAILED):
            return
        self.state = JOB_FAILED
        self.error = reason
        TELEMETRY.event("job.failed", job=self.job_id, reason=reason.splitlines()[0])
        logger.error("job %s failed: %s", self.job_id, reason.splitlines()[0])

    def _settle(self, lease: NetworkLease) -> None:
        """A lease reached DONE/POISON: advance its scenario if its whole
        work unit (budget or round) is settled."""
        state = self.scenarios[lease.scenario_index]
        state.open_leases.discard(lease.lease_id)
        if state.open_leases or self.state == JOB_FAILED:
            return
        if state.bounds is None:
            self._finish_scenario(state)
        else:
            self._round_barrier(lease.scenario_index)
        self._maybe_finish_job()

    def _round_barrier(self, scenario_index: int) -> None:
        """All leases of the current adaptive round settled: apply the
        stopping rule and open the next round, or end the scenario."""
        state = self.scenarios[scenario_index]
        if state.completed_rounds >= len(state.bounds):
            # Zero-round plan: the only lease was the baseline fetch.
            self._finish_scenario(state)
            return
        start, end = state.bounds[state.completed_rounds]
        if any(index not in state.records for index in range(start, end)):
            # Quarantined poison left holes: the stopping rule is a pure
            # function of *complete* rounds, so the scenario ends at the
            # last full barrier (exactly like local adaptive execution).
            logger.error(
                "job %s scenario %s: round %d has holes from poison lease(s); "
                "stopping after round %d",
                self.job_id, state.scenario.scenario_id,
                state.completed_rounds + 1, state.completed_rounds,
            )
            self._finish_scenario(state)
            return
        state.completed_rounds += 1
        state.stop_end = end
        round_records = [state.records[index] for index in range(end)]
        if (
            self.plan.should_stop(state.completed_rounds, round_records)
            or state.completed_rounds >= len(state.bounds)
        ):
            self._finish_scenario(state)
            return
        self._open_next(scenario_index)

    def _finish_scenario(self, state: _ScenarioState) -> None:
        if not state.done:
            state.done = True
            logger.info(
                "job %s scenario %s complete: %d record(s)",
                self.job_id, state.scenario.scenario_id, len(state.records),
            )

    def _maybe_finish_job(self) -> None:
        if self.state in (JOB_DONE, JOB_FAILED):
            return
        if any(not state.done for state in self.scenarios):
            return
        if any(
            lease.state in (LeaseState.RUNNING, LeaseState.WAITING)
            for lease in self.leases.values()
        ):  # pragma: no cover - scenarios only finish once their leases settle
            return
        self.write_artifacts()
        self.state = JOB_DONE
        TELEMETRY.event(
            "job.done",
            job=self.job_id,
            scenarios=len(self.scenarios),
            trials=sum(len(s.records) for s in self.scenarios),
            reclaimed=self.recovery.reclaimed,
        )

    # ------------------------------------------------------------------
    # Artifacts
    # ------------------------------------------------------------------
    def _scenario_checkpoint_text(self, state: _ScenarioState) -> str:
        """The scenario's checkpoint, byte-identical to a local serial run:
        the canonical header line, then records in trial-index order."""
        lines = [
            checkpoint_header_line(
                strategy=state.strategy_name,
                seed=self.spec.seed,
                num_images=(
                    state.num_images if state.num_images is not None else self.spec.images
                ),
                total_trials=state.total_trials,
                batch_size=self.spec.batch_size,
                baseline_accuracy=state.baseline,
                inferences_per_second=state.ips,
                plan=self.plan.to_dict() if self.plan is not None else None,
            )
        ]
        lines.extend(
            checkpoint_record_line(state.records[index]) for index in sorted(state.records)
        )
        return "".join(lines)

    def _sweep_result(self) -> SweepResult:
        scenario_results = []
        for state in self.scenarios:
            result = CampaignResult(
                baseline_accuracy=state.baseline if state.baseline is not None else 0.0,
                strategy=state.strategy_name,
                num_images=(
                    state.num_images if state.num_images is not None else self.spec.images
                ),
                seed=self.spec.seed,
                emulated_inferences_per_second=state.ips,
            )
            result.records = [state.records[index] for index in sorted(state.records)]
            result.recovery = self.recovery.to_dict()
            scenario_results.append(
                ScenarioResult(scenario=state.scenario, result=result)
            )
        return SweepResult(scenario_results=scenario_results)

    def write_artifacts(self) -> None:
        """Durably write per-scenario checkpoints + merged sweep artifacts."""
        sweep = self._sweep_result()
        for state in self.scenarios:
            path = self.artifacts_dir / "scenarios" / state.scenario.checkpoint_name()
            path.parent.mkdir(parents=True, exist_ok=True)
            durable_write_text(path, self._scenario_checkpoint_text(state))
        self.artifacts_dir.mkdir(parents=True, exist_ok=True)
        durable_write_text(self.artifacts_dir / "sweep.jsonl", sweep.merged_jsonl_text())
        payload = {
            "job_id": self.job_id,
            "state": self.state if self.state != JOB_RUNNING else JOB_DONE,
            "spec": self.spec.to_dict(),
            "recovery": self.recovery.to_dict(),
            "structure_digest": sweep.structure_digest(),
            "scenarios": [
                {
                    "scenario": state.scenario.scenario_id,
                    "cell": list(state.scenario.cell),
                    "records": len(state.records),
                    "total_trials": state.total_trials,
                    "baseline_accuracy": state.baseline,
                }
                for state in self.scenarios
            ],
        }
        durable_write_text(
            self.artifacts_dir / "result.json",
            dump_json_safe(payload, indent=2, sort_keys=True) + "\n",
        )

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    def status(self, nodes: int = 0) -> JobStatus:
        return JobStatus(
            job_id=self.job_id,
            state=self.state,
            scenarios_total=len(self.scenarios),
            scenarios_done=sum(1 for state in self.scenarios if state.done),
            trials_total=sum(state.total_trials for state in self.scenarios),
            trials_done=sum(len(state.records) for state in self.scenarios),
            leases=self.recovery.leases,
            reclaimed=self.recovery.reclaimed,
            nodes=nodes,
            error=self.error,
            artifacts_dir=str(self.artifacts_dir),
        )
