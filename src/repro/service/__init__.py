"""Fleet execution: a campaign coordinator service and worker node agents.

The package extends the single-host lease supervision of
:mod:`repro.core.supervisor` across the wire:

* :mod:`repro.service.protocol` — typed, validated JSON wire messages;
* :mod:`repro.service.client` — HTTP client with bounded retry/timeout and
  seeded exponential backoff + jitter;
* :mod:`repro.service.jobs` — the coordinator-side lease book: network
  leases carry the same ``(lease_id, attempt)`` tokens as local shards,
  missed heartbeats reclaim them with exponential backoff, and exhausted
  retries escalate to the poison policy;
* :mod:`repro.service.coordinator` — the ``repro serve`` HTTP service
  (stdlib :class:`~http.server.ThreadingHTTPServer`; zero new deps);
* :mod:`repro.service.worker` — the ``repro worker`` node agent: register,
  lease shard ranges, stream record batches, heartbeat.

The invariant carried over from local execution: because trials are pure
functions of ``(seed, index)`` and records merge by trial index, a fleet
run's merged artifacts are **byte-identical** to a local ``--workers 1``
run of the same spec — regardless of node count, kills, partitions or
retries.
"""

from repro.service.client import CoordinatorClient, HttpClient, ServiceError
from repro.service.coordinator import CampaignCoordinator
from repro.service.jobs import FleetJob, scenario_from_wire, scenario_to_wire
from repro.service.worker import WorkerAgent

__all__ = [
    "CampaignCoordinator",
    "CoordinatorClient",
    "FleetJob",
    "HttpClient",
    "ServiceError",
    "WorkerAgent",
    "scenario_from_wire",
    "scenario_to_wire",
]
