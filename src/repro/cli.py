"""Command-line interface for the fault-tolerance analysis platform.

The paper's platform is driven by command-line tools running on the board's
ARM cores; this module is the emulator-side equivalent so that campaigns can
be scripted without writing Python:

.. code-block:: bash

    python -m repro describe
    python -m repro campaign --strategy random --values 0 1 -1 --trials 2 --images 64
    python -m repro campaign --workers 4 --checkpoint fig2.jsonl   # parallel
    python -m repro campaign --workers 4 --checkpoint fig2.jsonl --resume
    python -m repro heatmap  --value 0 --images 64 --output fig3.json
    python -m repro sweep    --spec sweep.toml --workers 4 --sweep-dir out
    python -m repro report   --input out/sweep.json --html report.html --qc
    python -m repro observe  ingest --store observe/store.jsonl out/sweep.json
    python -m repro observe  trends --store observe/store.jsonl --html trends.html
    python -m repro observe  qc --report report.json --source out/sweep.json
    python -m repro serve    --port 8035 --artifacts-dir fleet-out
    python -m repro worker   --coordinator http://127.0.0.1:8035 --name node-a
    python -m repro submit   --coordinator http://127.0.0.1:8035 --spec sweep.toml --wait
    python -m repro table1

All subcommands use the cached case-study model (training it on first use);
``--width`` and ``--epochs`` select a different model variant.
"""

from __future__ import annotations

import argparse
import signal
import sys
import time
from pathlib import Path

from repro.core.analysis import accuracy_drop_boxplots, heatmap_matrix, most_sensitive_site
from repro.core.campaign import CampaignConfig, FaultInjectionCampaign
from repro.core.chaos import load_plan
from repro.core.parallel import ParallelCampaignRunner
from repro.core.registry import MODELS, STRATEGIES, axis_provenance, registry_digest, registry_schema
from repro.core.stats import AdaptiveCampaignPlan
from repro.core.sweep import ExperimentSpec, SweepRunner, load_spec_data, validate_spec_data
from repro.runtime.perf_model import table1_performance_rows
from repro.utils.durable import durable_write_text
from repro.utils.jsonsafe import dump_json_safe
from repro.utils.logging import set_verbosity
from repro.utils.tabulate import format_heatmap, format_table
from repro.utils.telemetry import TELEMETRY
from repro.zoo import CaseStudySpec, build_case_study_platform, case_study_platform_spec


#: Defaults of the campaign flags that only parameterise an adaptive plan
#: (single source of truth for build_parser and the orphaned-flag guard).
_ADAPTIVE_FLAG_DEFAULTS = {
    "adaptive_round": 16,
    "adaptive_confidence": 0.95,
    "adaptive_metric": "mean-drop",
    "chance_accuracy": None,
}


def _add_log_level_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--log-level", choices=("debug", "info", "warning", "error"),
                        default=None,
                        help="verbosity of the repro.* loggers (e.g. 'info' surfaces "
                             "supervisor recovery logs; default: warning, or the "
                             "REPRO_LOG_LEVEL environment variable)")


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", type=str, default="",
                        help="write telemetry spans/counters (campaign + scenario "
                             "spans, lease lifecycle, cache hit counters) as JSONL "
                             "to this path; purely observational — records are "
                             "byte-identical with tracing on or off")


def _add_fault_tolerance_arguments(parser: argparse.ArgumentParser) -> None:
    """Supervisor knobs shared by the campaign and sweep subcommands."""
    parser.add_argument("--max-shard-retries", type=int, default=2,
                        help="re-lease attempts after a shard's worker dies or "
                             "hangs before the shard is declared poison "
                             "(0 restores fail-fast behaviour; recovery never "
                             "changes records)")
    parser.add_argument("--shard-timeout", type=float, default=None,
                        help="seconds a worker may go without reporting progress "
                             "before it is declared hung and its shard re-leased "
                             "(default: hang detection disabled; size it well "
                             "above platform build + the slowest trial group)")
    parser.add_argument("--poison-policy", choices=("raise", "quarantine"), default="raise",
                        help="what to do with a shard that exhausts its retries: "
                             "abort the run (raise) or record it in the result's "
                             "recovery provenance and keep going (quarantine)")
    parser.add_argument("--chaos-plan", type=str, default="",
                        help="inject harness faults into workers for testing "
                             "recovery: a JSON plan file or an inline "
                             "'seed=3,workers=2,kills=1,hangs=1' spec")


def _recovery_note(result) -> str | None:
    """One line summarising what the supervisor had to heal, if anything."""
    recovery = result.recovery or {}
    healed = (
        recovery.get("reclaimed", 0)
        or recovery.get("dead_workers", 0)
        or recovery.get("hung_workers", 0)
        or recovery.get("poison_shards")
        or any((recovery.get("checkpoint") or {}).values())
    )
    if not healed:
        return None
    checkpoint = recovery.get("checkpoint") or {}
    parts = [
        f"{recovery.get('reclaimed', 0)} lease(s) reclaimed",
        f"{recovery.get('dead_workers', 0)} dead / {recovery.get('hung_workers', 0)} "
        f"hung worker(s)",
    ]
    if recovery.get("poison_shards"):
        parts.append(f"{len(recovery['poison_shards'])} poison shard(s)")
    if any(checkpoint.values()):
        parts.append(
            f"checkpoint healed ({checkpoint.get('corrupt_lines', 0)} corrupt, "
            f"{checkpoint.get('duplicate_records', 0)} duplicate line(s))"
        )
    return "recovery: " + ", ".join(parts) + "; records are unaffected"


def _runtime_note(stats: dict | None) -> str | None:
    """One line of execution counters (cache hit rates at a glance)."""
    if not stats:
        return None
    parts = []
    gemm = stats.get("gemm") or {}
    calls = sum(v for k, v in gemm.items() if k.endswith("_calls"))
    if calls:
        parts.append(f"{calls} GEMM call(s)")
    cache = stats.get("clean_cache")
    if cache:
        parts.append(
            f"clean-cache hit rate {cache.get('hit_rate', 0.0):.1%} "
            f"({cache.get('hits', 0)}/{cache.get('hits', 0) + cache.get('misses', 0)})"
        )
    tape = stats.get("tape")
    if tape:
        parts.append(
            f"tape layer hit rate {tape.get('layer_hit_rate', 0.0):.1%} "
            f"({tape.get('layer_hits', 0)}/"
            f"{tape.get('layer_hits', 0) + tape.get('layer_misses', 0)})"
        )
    if not parts:
        return None
    processes = stats.get("processes")
    if processes:
        parts.append(f"{processes} process(es)")
    return "runtime: " + ", ".join(parts)


def _add_model_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--family", choices=("resnet18", "mobilenet"), default="resnet18",
                        help="architecture family of the case-study model "
                             "(mobilenet = depthwise-separable variant)")
    parser.add_argument("--width", type=float, default=0.25,
                        help="width multiplier of the case-study model")
    parser.add_argument("--epochs", type=int, default=6, help="training epochs")
    parser.add_argument("--train-images", type=int, default=1500)
    parser.add_argument("--test-images", type=int, default=300)
    parser.add_argument("--seed", type=int, default=7, help="model/dataset seed")


def _case_spec(args: argparse.Namespace) -> CaseStudySpec:
    return CaseStudySpec(
        width_multiplier=args.width,
        num_train=args.train_images,
        num_test=args.test_images,
        epochs=args.epochs,
        seed=args.seed,
        family=getattr(args, "family", "resnet18"),
    )


def _build_platform(args: argparse.Namespace):
    return build_case_study_platform(_case_spec(args))


def _cmd_describe(args: argparse.Namespace) -> int:
    platform, case = _build_platform(args)
    print(platform.describe())
    print(f"float accuracy: {case.float_accuracy:.3f}")
    baseline = platform.baseline_accuracy(case.dataset.test_images, case.dataset.test_labels)
    print(f"int8 accuracy (emulator): {baseline:.3f}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    platform, _ = _build_platform(args)
    rows = []
    for est in table1_performance_rows(platform.loadable):
        rows.append([
            est.device,
            est.threads if est.threads is not None else "-",
            est.inference_ms,
            est.luts if est.luts is not None else None,
            est.ffs if est.ffs is not None else None,
        ])
    print(format_table(["Device", "Threads", "Inference (ms)", "#LUT", "#FF"], rows,
                       title="Table I equivalent"))
    return 0


def _write_profile(result, checkpoint: str, default: str) -> Path:
    """Persist a campaign's per-stage wall-time breakdown as JSON.

    The file lands next to the checkpoint (``<checkpoint>.profile.json``)
    when one is in use, else under ``default`` in the working directory.
    """
    stats = result.runtime_stats or {}
    payload = {
        "profile": stats.get("profile"),
        "gemm": stats.get("gemm"),
        "tape": stats.get("tape"),
        "clean_cache": stats.get("clean_cache"),
        "processes": stats.get("processes"),
        "workers": stats.get("workers"),
        "wall_seconds": result.wall_seconds,
        "num_trials": len(result),
    }
    path = Path(checkpoint + ".profile.json") if checkpoint else Path(default)
    durable_write_text(path, dump_json_safe(payload, indent=2, sort_keys=True) + "\n")
    return path


def _campaign_strategy_params(args: argparse.Namespace) -> dict:
    """The subset of strategy flags the chosen kind's schema accepts.

    The campaign parser exposes ``--counts``/``--trials`` for every
    strategy; kinds that take no such parameters (e.g. ``per-mac``) would
    otherwise be handed unknown params built from the flags' defaults.
    """
    entry = STRATEGIES.get(args.strategy, context="campaign")
    known = {p.name for p in entry.params}
    flags = {"counts": tuple(args.counts), "trials": args.trials}
    return {key: value for key, value in flags.items() if key in known}


def _cmd_campaign(args: argparse.Namespace) -> int:
    # Parse the chaos plan before the (expensive) platform build so a bad
    # --chaos-plan fails in milliseconds, not after model training.
    chaos = load_plan(args.chaos_plan) if args.chaos_plan else None
    platform_spec, case = case_study_platform_spec(_case_spec(args))
    params = _campaign_strategy_params(args)
    strategy = STRATEGIES.build(
        args.strategy, params, context="campaign strategy", values=tuple(args.values)
    )

    plan = None
    if args.adaptive_target is not None:
        from repro.core.stats import OutcomeThresholds

        plan = AdaptiveCampaignPlan(
            target_half_width=args.adaptive_target,
            round_size=args.adaptive_round,
            confidence=args.adaptive_confidence,
            metric=args.adaptive_metric.replace("-", "_"),
            thresholds=OutcomeThresholds(chance_accuracy=args.chance_accuracy),
        )
    else:
        # The other adaptive knobs only parameterise the stopping plan; a
        # fixed-budget campaign would silently ignore them, which reads as
        # "my flags worked" when none of them did.
        tuned = [
            "--" + dest.replace("_", "-")
            for dest, default in _ADAPTIVE_FLAG_DEFAULTS.items()
            if getattr(args, dest) != default
        ]
        if tuned:
            raise ValueError(
                f"{', '.join(tuned)} only take effect with --adaptive-target; "
                "set a CI half-width target to run a confidence-bounded campaign"
            )

    images = case.dataset.test_images[: args.images]
    labels = case.dataset.test_labels[: args.images]
    runner = ParallelCampaignRunner(
        platform_spec,
        strategy,
        CampaignConfig(
            seed=args.campaign_seed,
            fused_trials=args.fused_trials,
            profile=args.profile,
            max_shard_retries=args.max_shard_retries,
            shard_timeout=args.shard_timeout,
            poison_policy=args.poison_policy,
            chaos=chaos,
        ),
        workers=args.workers,
        checkpoint=args.checkpoint or None,
        resume=args.resume,
        plan=plan,
    )
    result = runner.run(images, labels)
    result.provenance = {
        "registry_digest": registry_digest(),
        "strategy": {
            **axis_provenance(STRATEGIES, args.strategy, params),
            "values": [int(v) for v in args.values],
        },
        "model": axis_provenance(
            MODELS,
            "case-study",
            {
                "width_multiplier": args.width,
                "num_train": args.train_images,
                "num_test": args.test_images,
                "epochs": args.epochs,
                "seed": args.seed,
            },
        ),
    }

    print(f"baseline accuracy: {result.baseline_accuracy:.3f}; "
          f"{len(result)} injections in {result.wall_seconds:.1f}s "
          f"({args.workers} worker{'s' if args.workers != 1 else ''})")
    note = _recovery_note(result)
    if note:
        print(note)
    runtime = _runtime_note(result.runtime_stats)
    if runtime:
        print(runtime)
    if args.profile:
        profile_path = _write_profile(result, args.checkpoint, default="campaign.profile.json")
        print(f"stage profile written to {profile_path}")
    if result.adaptive is not None:
        info = result.adaptive
        half_width = info["final_half_width"]
        print(f"adaptive stopping: {info['trials_evaluated']}/{info['budget']} trials "
              f"over {info['rounds_completed']} round(s), "
              f"{'stopped early' if info['stopped_early'] else 'ran to budget'}; "
              f"final CI half-width "
              f"{'n/a' if half_width is None else format(half_width, '.4f')} "
              f"(target {plan.target_half_width:g})")
    series = accuracy_drop_boxplots(result)
    for value, s in sorted(series.items(), key=lambda kv: str(kv[0])):
        rows = [[count, s.boxes[count].mean, s.boxes[count].maximum] for count in s.positions()]
        print(format_table(["#faults", "mean drop", "max drop"], rows, floatfmt=".3f",
                           title=f"injected value {value}"))
    if args.output:
        durable_write_text(Path(args.output), result.to_json())
        print(f"records written to {args.output}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    data = load_spec_data(args.spec)
    problems = validate_spec_data(data)
    if problems:
        raise ValueError(
            f"spec {args.spec} is invalid ({len(problems)} problem(s)):\n"
            + "\n".join(f"  - {problem}" for problem in problems)
        )
    spec = ExperimentSpec.from_dict(data)
    if args.images is not None:
        spec.images = args.images
    if args.sweep_seed is not None:
        spec.seed = args.sweep_seed
    grid = spec.grid()
    if args.list:
        for scenario in grid:
            print(scenario.scenario_id)
        print(f"{len(grid)} scenario(s)")
        return 0

    runner = SweepRunner(
        grid,
        workers=args.workers,
        sweep_dir=args.sweep_dir,
        resume=args.resume,
        fused_trials=args.fused_trials,
        profile=args.profile,
        max_shard_retries=args.max_shard_retries,
        shard_timeout=args.shard_timeout,
        poison_policy=args.poison_policy,
        chaos=load_plan(args.chaos_plan) if args.chaos_plan else None,
    )
    sweep = runner.run()

    items = sweep.summary()["scenarios"]
    rows = []
    for item in items:
        rows.append([
            item["scenario"],
            item["num_trials"],
            item["baseline_accuracy"],
            item["mean_accuracy_drop"],
            item["max_accuracy_drop"],
        ])
    print(format_table(
        ["scenario", "trials", "baseline", "mean drop", "max drop"],
        rows,
        floatfmt=".3f",
        title=f"{len(grid)} scenarios x {spec.images} images "
              f"({args.workers} worker{'s' if args.workers != 1 else ''}, "
              f"{sweep.wall_seconds:.1f}s)",
    ))
    with_trials = [item for item in items if item["num_trials"]]
    if with_trials:
        worst = max(with_trials, key=lambda item: item["max_accuracy_drop"])
        print(f"worst accuracy drop: {worst['max_accuracy_drop']:.3f} "
              f"in scenario {worst['scenario']}")
    print(f"structure digest: {sweep.structure_digest()}")
    stats_parts = [
        sr.result.runtime_stats for sr in sweep.scenario_results if sr.result.runtime_stats
    ]
    if stats_parts:
        # Each scenario's runtime_stats is shaped like one per-process
        # payload (gemm/clean_cache/tape/profile), so the runner's
        # aggregator merges them sweep-wide and recomputes the hit rates.
        merged = ParallelCampaignRunner._aggregate_runtime_stats(stats_parts, args.workers)
        if merged:
            merged["processes"] = sum(p.get("processes", 0) for p in stats_parts)
        runtime = _runtime_note(merged)
        if runtime:
            print(f"sweep {runtime}")
    for sr in sweep.scenario_results:
        note = _recovery_note(sr.result)
        if note:
            print(f"{sr.scenario.scenario_id}: {note}")
    if args.sweep_dir:
        print(f"artifacts written to {args.sweep_dir}/sweep.jsonl and sweep.json")
        if args.profile:
            print(f"stage profile written to {args.sweep_dir}/profile.json")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    if not args.spec and not args.kinds:
        raise ValueError("validate needs --spec <file> and/or --kinds")
    if args.kinds:
        schema = registry_schema()
        for category in sorted(schema):
            kinds = schema[category]
            print(f"{category} kinds:")
            for kind in sorted(kinds):
                description = kinds[kind].get("description", "")
                print(f"  {kind}" + (f" - {description}" if description else ""))
        print(f"registry digest: {registry_digest()}")
        if not args.spec:
            return 0
    data = load_spec_data(args.spec)
    problems = validate_spec_data(data)
    if problems:
        print(
            f"spec {args.spec} is invalid ({len(problems)} problem(s)):",
            file=sys.stderr,
        )
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    grid = ExperimentSpec.from_dict(data).grid()
    print(f"spec {args.spec} is valid: {len(grid)} scenario(s)")
    print(f"registry digest: {registry_digest()}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.core.stats import OutcomeThresholds
    from repro.report import build_report, load_results, render_html

    kind, results = load_results(args.input)
    # The CLI does not expose masked_epsilon; clamp it under the user's
    # tolerable threshold so e.g. --tolerable-drop 0 ("every measurable
    # degradation is SDC") is accepted rather than rejected over a knob
    # the user cannot see.
    default_epsilon = OutcomeThresholds().masked_epsilon
    thresholds = OutcomeThresholds(
        masked_epsilon=min(default_epsilon, args.tolerable_drop),
        tolerable_drop=args.tolerable_drop,
        critical_drop=args.critical_drop,
        chance_accuracy=args.chance_accuracy,
    )
    report = build_report(
        results,
        kind=kind,
        source=args.input,
        confidence=args.confidence,
        thresholds=thresholds,
    )

    reliability = report["reliability"]
    rows = []
    for entry in report["scenarios"]:
        summary = entry["summary"]
        ci = summary["mean_drop_ci"]
        rows.append([
            entry["scenario"],
            summary["num_trials"],
            summary["mean_accuracy_drop"],
            "-" if ci is None else f"[{ci['low']:.3f}, {ci['high']:.3f}]",
            summary["sdc_rate"],
            summary["outcomes"]["critical"],
        ])
    print(format_table(
        ["scenario", "trials", "mean drop", f"{args.confidence:.0%} CI", "SDC rate", "crit"],
        rows,
        floatfmt=".3f",
        title=f"{kind} report: {reliability['total_trials']} trials, "
              f"SDC rate {reliability['sdc_rate']:.3f}",
    ))

    html_text = render_html(report, title=f"repro {kind} reliability report")
    html_path = Path(args.html)
    durable_write_text(html_path, html_text)
    print(f"HTML report written to {html_path}")
    if args.json_out:
        json_path = Path(args.json_out)
        durable_write_text(json_path, dump_json_safe(report, indent=2, sort_keys=True) + "\n")
        print(f"JSON report written to {json_path}")
    if args.qc:
        import json as json_module

        from repro.observe import qc_report
        from repro.observe.qc import format_findings

        # Round-trip the report through JSON so QC checks the claims as
        # they would be read back from disk, not live Python objects.
        claimed = json_module.loads(dump_json_safe(report))
        findings = qc_report(claimed, results, html_text=html_text)
        if findings:
            print(format_findings(findings), file=sys.stderr)
            print(f"report QC: {len(findings)} finding(s)", file=sys.stderr)
            return 1
        print("report QC: every claim recomputed from source records, no findings")
    return 0


def _cmd_observe_ingest(args: argparse.Namespace) -> int:
    from repro.observe import LongitudinalStore

    store = LongitudinalStore(args.store)
    outcome = store.ingest(args.artifacts, version=args.version or None)
    print(
        f"ingested {len(args.artifacts)} artifact(s) into {args.store}: "
        f"{outcome['added']} new entr{'y' if outcome['added'] == 1 else 'ies'}, "
        f"{outcome['duplicates']} duplicate(s), {outcome['total']} total"
    )
    return 0


def _cmd_observe_trends(args: argparse.Namespace) -> int:
    from repro.observe import LongitudinalStore, build_trends
    from repro.report import render_trends_html

    store = LongitudinalStore(args.store)
    entries = store.entries()
    if not entries:
        raise ValueError(
            f"store {args.store} is empty; run 'repro observe ingest' first"
        )
    trends = build_trends(entries, confidence=args.confidence)
    print(
        f"{trends['num_scenarios']} scenario series across "
        f"{len(trends['versions'])} version(s); "
        f"{trends['num_regressions']} regression(s) flagged "
        f"at {trends['confidence']:.0%} confidence"
    )
    for series in trends["scenarios"]:
        for flag in series["regressions"]:
            print(
                f"REGRESSION {flag['scenario']} {flag['metric']}: "
                f"{flag['from_version']} [{flag['from_interval']['low']:.4f}, "
                f"{flag['from_interval']['high']:.4f}] -> "
                f"{flag['to_version']} [{flag['to_interval']['low']:.4f}, "
                f"{flag['to_interval']['high']:.4f}]"
            )
    if args.json_out:
        durable_write_text(Path(args.json_out), dump_json_safe(trends, indent=2, sort_keys=True) + "\n")
        print(f"trend JSON written to {args.json_out}")
    if args.html:
        durable_write_text(Path(args.html), render_trends_html(trends))
        print(f"trend dashboard written to {args.html}")
    if args.gate and trends["num_regressions"]:
        print(f"trend gate: {trends['num_regressions']} regression(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_observe_qc(args: argparse.Namespace) -> int:
    from repro.observe import qc_files
    from repro.observe.qc import format_findings

    findings = qc_files(args.report, args.source, args.html or None)
    if findings:
        print(format_findings(findings), file=sys.stderr)
        print(f"report QC: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(
        f"report QC: every claim in {args.report} recomputed from "
        f"{args.source}, no findings"
    )
    return 0


def _cmd_heatmap(args: argparse.Namespace) -> int:
    platform, case = _build_platform(args)
    images = case.dataset.test_images[: args.images]
    labels = case.dataset.test_labels[: args.images]
    strategy = STRATEGIES.build(
        "exhaustive", {}, context="heatmap strategy", values=(args.value,)
    )
    campaign = FaultInjectionCampaign(platform, strategy, CampaignConfig(seed=args.campaign_seed))
    result = campaign.run(images, labels)

    matrix = heatmap_matrix(result, injected_value=args.value)
    print(format_heatmap(matrix * 100.0, "MAC unit", "multiplier", cellfmt="+6.1f"))
    worst = most_sensitive_site(result, injected_value=args.value)
    print(f"most sensitive site: MAC {worst.mac_unit + 1} / MUL {worst.multiplier + 1} "
          f"({worst.accuracy_drop * 100:.1f}% drop)")
    if args.output:
        durable_write_text(Path(args.output), dump_json_safe(
            {"baseline_accuracy": result.baseline_accuracy,
             "injected_value": args.value,
             "heatmap": matrix.tolist()}, indent=2))
        print(f"heat map written to {args.output}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.core.chaos import load_network_plan
    from repro.service.coordinator import CampaignCoordinator

    net_chaos = load_network_plan(args.net_chaos) if args.net_chaos else None
    coordinator = CampaignCoordinator(
        host=args.host,
        port=args.port,
        artifacts_dir=args.artifacts_dir,
        heartbeat_interval=args.heartbeat_interval,
        heartbeat_timeout=args.heartbeat_timeout,
        shard_size=args.shard_size,
        max_shard_retries=args.max_shard_retries,
        retry_backoff=args.retry_backoff,
        poison_policy=args.poison_policy,
        fused_trials=args.fused_trials,
        net_chaos=net_chaos,
    )
    # Flushed before serving so scripts that bind port 0 can read the
    # actual port from the first line of output.
    print(f"coordinator listening on {coordinator.url}", flush=True)
    print(f"artifacts under {coordinator.artifacts_dir}", flush=True)
    try:
        coordinator.serve_forever()
    finally:
        coordinator.shutdown()
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.service.worker import WorkerAgent

    # Parse the chaos plan up front, same rationale as repro campaign.
    chaos = load_plan(args.chaos_plan) if args.chaos_plan else None
    agent = WorkerAgent(
        args.coordinator,
        name=args.name,
        cache_dir=args.cache_dir or None,
        poll_interval=args.poll_interval,
        max_idle=args.max_idle,
        batch_records=args.batch_records,
        chaos=chaos,
        hard_kill=True,  # a chaos kill in process mode is a real os._exit
        timeout=args.timeout,
        retries=args.retries,
        backoff=args.retry_backoff,
        jitter_seed=args.jitter_seed,
    )
    code = agent.run()
    print(f"worker {args.name}: served {agent.leases_served} lease(s)")
    return code


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import CoordinatorClient

    data = load_spec_data(args.spec)
    problems = validate_spec_data(data)
    if problems:
        raise ValueError(
            f"spec {args.spec} is invalid ({len(problems)} problem(s)):\n"
            + "\n".join(f"  - {problem}" for problem in problems)
        )
    client = CoordinatorClient(args.coordinator)
    accepted = client.submit_job(data)
    print(f"job {accepted.job_id} submitted to {client.http.base_url}", flush=True)
    if not args.wait:
        print(f"poll with: repro submit --coordinator {args.coordinator} "
              f"--spec {args.spec} --wait  (or GET /jobs/{accepted.job_id})")
        return 0
    deadline = time.monotonic() + args.timeout if args.timeout else None
    while True:
        status = client.job_status(accepted.job_id)
        if status.state in ("done", "failed"):
            break
        if deadline is not None and time.monotonic() > deadline:
            print(
                f"job {accepted.job_id} still {status.state} after "
                f"{args.timeout:.0f}s ({status.trials_done}/{status.trials_total} "
                f"trial(s)); giving up the wait (the job keeps running)",
                file=sys.stderr,
            )
            return 1
        time.sleep(args.poll)
    print(
        f"job {accepted.job_id} {status.state}: "
        f"{status.scenarios_done}/{status.scenarios_total} scenario(s), "
        f"{status.trials_done}/{status.trials_total} trial(s), "
        f"{status.leases} lease(s) ({status.reclaimed} reclaimed)"
    )
    if status.state == "failed":
        print(f"error: {status.error}", file=sys.stderr)
        return 1
    print(f"artifacts written to {status.artifacts_dir}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    subparsers = parser.add_subparsers(dest="command", required=True)

    describe = subparsers.add_parser("describe", help="summarise the compiled platform")
    _add_model_arguments(describe)
    describe.set_defaults(func=_cmd_describe)

    table1 = subparsers.add_parser("table1", help="print the Table I equivalent")
    _add_model_arguments(table1)
    table1.set_defaults(func=_cmd_table1)

    campaign = subparsers.add_parser("campaign", help="run a fault-injection campaign (Fig. 2 style)")
    _add_model_arguments(campaign)
    campaign.add_argument("--strategy", choices=tuple(STRATEGIES.kinds()), default="random")
    campaign.add_argument("--values", type=int, nargs="+", default=[0, 1, -1])
    campaign.add_argument("--counts", type=int, nargs="+", default=[1, 2, 3, 4, 5, 6, 7])
    campaign.add_argument("--trials", type=int, default=2)
    campaign.add_argument("--images", type=int, default=64)
    campaign.add_argument("--campaign-seed", type=int, default=0)
    campaign.add_argument("--output", type=str, default="")
    campaign.add_argument("--workers", type=int, default=1,
                          help="worker processes; trials are sharded deterministically, "
                               "records are identical for any worker count")
    campaign.add_argument("--checkpoint", type=str, default="",
                          help="JSONL file streaming one record per finished trial")
    campaign.add_argument("--resume", action="store_true",
                          help="skip trials already present in --checkpoint")
    campaign.add_argument("--fused-trials", type=int, default=8,
                          help="trials evaluated per fused engine pass (1 disables "
                               "fusion; records are bit-identical for any value)")
    campaign.add_argument("--profile", action="store_true",
                          help="write a per-stage wall-time breakdown (tape build, "
                               "correction, suffix forward, requant) as JSON next "
                               "to the checkpoint")
    campaign.add_argument("--adaptive-target", type=float, default=None,
                          help="adaptive stopping: stop once the CI half-width of the "
                               "tracked metric is at or below this target")
    campaign.add_argument("--adaptive-round", type=int,
                          default=_ADAPTIVE_FLAG_DEFAULTS["adaptive_round"],
                          help="trials per adaptive round (stopping is re-evaluated "
                               "only at round boundaries, keeping records "
                               "bit-identical for any worker count)")
    campaign.add_argument("--adaptive-confidence", type=float,
                          default=_ADAPTIVE_FLAG_DEFAULTS["adaptive_confidence"],
                          help="confidence level of the stopping interval")
    campaign.add_argument("--adaptive-metric", choices=("mean-drop", "sdc-rate"),
                          default=_ADAPTIVE_FLAG_DEFAULTS["adaptive_metric"],
                          help="metric the stopping interval tracks")
    campaign.add_argument("--chance-accuracy", type=float,
                          default=_ADAPTIVE_FLAG_DEFAULTS["chance_accuracy"],
                          help="for the sdc-rate metric: count any trial whose "
                               "accuracy falls to this chance level as critical")
    _add_fault_tolerance_arguments(campaign)
    _add_log_level_argument(campaign)
    _add_trace_argument(campaign)
    campaign.set_defaults(func=_cmd_campaign)

    sweep = subparsers.add_parser(
        "sweep",
        help="run a declarative scenario grid (models x faults x strategies x platforms)",
    )
    sweep.add_argument("--spec", type=str, required=True,
                       help="JSON or TOML experiment spec file (see repro.core.sweep)")
    sweep.add_argument("--sweep-dir", type=str, default="sweep-out",
                       help="directory for per-scenario checkpoints and merged artifacts")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes per scenario; merged artifacts are "
                            "bit-identical for any worker count")
    sweep.add_argument("--resume", action="store_true",
                       help="complete the missing trials of an interrupted sweep")
    sweep.add_argument("--images", type=int, default=None,
                       help="override the spec's evaluation-image count")
    sweep.add_argument("--sweep-seed", type=int, default=None,
                       help="override the spec's campaign seed")
    sweep.add_argument("--list", action="store_true",
                       help="print the scenario ids of the grid and exit")
    sweep.add_argument("--fused-trials", type=int, default=8,
                       help="trials evaluated per fused engine pass inside each "
                            "scenario (1 disables fusion)")
    sweep.add_argument("--profile", action="store_true",
                       help="write per-scenario stage profiles to "
                            "<sweep-dir>/profile.json")
    _add_fault_tolerance_arguments(sweep)
    _add_log_level_argument(sweep)
    _add_trace_argument(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    validate = subparsers.add_parser(
        "validate",
        help="check a sweep spec against the registered kinds without running anything",
    )
    validate.add_argument("--spec", type=str, default="",
                          help="JSON or TOML experiment spec file to validate")
    validate.add_argument("--kinds", action="store_true",
                          help="list the registered kinds of every axis registry")
    validate.set_defaults(func=_cmd_validate)

    report = subparsers.add_parser(
        "report",
        help="render a sweep.json / campaign JSON into an HTML + JSON reliability report",
    )
    report.add_argument("--input", type=str, required=True,
                        help="sweep.json (repro sweep) or campaign JSON (repro campaign --output)")
    report.add_argument("--html", type=str, default="report.html",
                        help="output path of the self-contained HTML dashboard")
    report.add_argument("--json", dest="json_out", type=str, default="",
                        help="optional output path of the machine-readable JSON report")
    report.add_argument("--confidence", type=float, default=0.95,
                        help="confidence level of all reported intervals")
    report.add_argument("--tolerable-drop", type=float, default=0.01,
                        help="accuracy-drop threshold separating tolerable from SDC")
    report.add_argument("--critical-drop", type=float, default=0.25,
                        help="accuracy-drop threshold separating SDC from critical")
    report.add_argument("--chance-accuracy", type=float, default=None,
                        help="mark any trial whose absolute accuracy falls to this "
                             "chance level (e.g. 0.1 for 10 classes) as critical, "
                             "regardless of its drop")
    report.add_argument("--qc", action="store_true",
                        help="after rendering, recompute every claim of the report "
                             "(counts, CIs, outcome tallies, rankings) from the "
                             "source records and fail on any mismatch")
    _add_log_level_argument(report)
    report.set_defaults(func=_cmd_report)

    observe = subparsers.add_parser(
        "observe",
        help="longitudinal observability: trend store, regression flags, report QC",
    )
    observe_sub = observe.add_subparsers(dest="observe_command", required=True)

    ingest = observe_sub.add_parser(
        "ingest",
        help="ingest sweep/campaign/profile/benchmark JSONs into the trend store",
    )
    ingest.add_argument("artifacts", nargs="+",
                        help="artifact files: sweep.json, campaign --output JSON, "
                             "profile.json, benchmarks/out/*.json")
    ingest.add_argument("--store", type=str, default="observe/store.jsonl",
                        help="path of the longitudinal JSONL store (created on "
                             "first ingest; rewritten deterministically)")
    ingest.add_argument("--version", type=str, default="",
                        help="version label of these artifacts (default: the "
                             "artifact's registry digest prefix)")
    _add_log_level_argument(ingest)
    ingest.set_defaults(func=_cmd_observe_ingest)

    trends = observe_sub.add_parser(
        "trends",
        help="build per-scenario trend series + interval-gated regression flags",
    )
    trends.add_argument("--store", type=str, default="observe/store.jsonl")
    trends.add_argument("--confidence", type=float, default=0.95,
                        help="confidence level of the interval-overlap regression test")
    trends.add_argument("--json", dest="json_out", type=str, default="",
                        help="optional output path of the machine-readable trends JSON")
    trends.add_argument("--html", type=str, default="",
                        help="optional output path of the trend dashboard HTML")
    trends.add_argument("--gate", action="store_true",
                        help="exit non-zero when any regression is flagged")
    _add_log_level_argument(trends)
    trends.set_defaults(func=_cmd_observe_trends)

    qc = observe_sub.add_parser(
        "qc",
        help="recompute every claim of a rendered report from its source artifact",
    )
    qc.add_argument("--report", type=str, required=True,
                    help="report JSON written by 'repro report --json'")
    qc.add_argument("--source", type=str, required=True,
                    help="the sweep.json / campaign JSON the report was built from")
    qc.add_argument("--html", type=str, default="",
                    help="optionally also verify the rendered HTML byte-for-byte")
    _add_log_level_argument(qc)
    qc.set_defaults(func=_cmd_observe_qc)

    serve = subparsers.add_parser(
        "serve",
        help="run the campaign coordinator: queue sweep jobs, lease shard "
             "ranges to worker nodes, merge their records",
    )
    serve.add_argument("--host", type=str, default="127.0.0.1",
                       help="interface to bind (default: localhost only)")
    serve.add_argument("--port", type=int, default=8035,
                       help="TCP port (0 = pick a free port; it is printed on startup)")
    serve.add_argument("--artifacts-dir", type=str, default="fleet-artifacts",
                       help="directory for per-job merged artifacts "
                            "(<dir>/<job-id>/sweep.jsonl etc.)")
    serve.add_argument("--heartbeat-interval", type=float, default=1.0,
                       help="seconds between worker heartbeats (announced to "
                            "workers at registration)")
    serve.add_argument("--heartbeat-timeout", type=float, default=10.0,
                       help="seconds of silence before a node's lease is "
                            "reclaimed and re-run elsewhere")
    serve.add_argument("--shard-size", type=int, default=8,
                       help="trials per network lease (scheduling granularity "
                            "only; merged records are identical for any value)")
    serve.add_argument("--max-shard-retries", type=int, default=2,
                       help="re-lease attempts after a node dies or goes silent "
                            "before the lease is declared poison")
    serve.add_argument("--retry-backoff", type=float, default=0.25,
                       help="base of the capped exponential backoff between "
                            "re-lease attempts")
    serve.add_argument("--poison-policy", choices=("raise", "quarantine"), default="raise",
                       help="fail the job (raise) or record the poison lease "
                            "and keep going (quarantine)")
    serve.add_argument("--fused-trials", type=int, default=8,
                       help="trials per fused engine pass on the workers")
    serve.add_argument("--net-chaos", type=str, default="",
                       help="inject network faults for testing recovery: a JSON "
                            "plan file or an inline "
                            "'seed=3,nodes=2,drops=1,partitions=1' spec")
    _add_log_level_argument(serve)
    _add_trace_argument(serve)
    serve.set_defaults(func=_cmd_serve)

    worker = subparsers.add_parser(
        "worker",
        help="run a worker node: register with a coordinator, lease shard "
             "ranges, stream records, heartbeat",
    )
    worker.add_argument("--coordinator", type=str, required=True,
                        help="coordinator base URL, e.g. http://127.0.0.1:8035")
    worker.add_argument("--name", type=str, default="node",
                        help="node name reported at registration (for logs)")
    worker.add_argument("--cache-dir", type=str, default="",
                        help="model-zoo cache directory (share it between "
                             "co-located workers to train each model once)")
    worker.add_argument("--poll-interval", type=float, default=0.25,
                        help="seconds between lease polls when the queue is empty")
    worker.add_argument("--max-idle", type=float, default=None,
                        help="exit 0 after this many consecutive idle seconds "
                             "(default: poll forever)")
    worker.add_argument("--batch-records", type=int, default=16,
                        help="records per upload batch (merge is index-keyed; "
                             "batching cannot affect records)")
    worker.add_argument("--timeout", type=float, default=10.0,
                        help="HTTP timeout per request")
    worker.add_argument("--retries", type=int, default=5,
                        help="HTTP retries per request (capped exponential "
                             "backoff + seeded jitter between attempts)")
    worker.add_argument("--retry-backoff", type=float, default=0.2,
                        help="base of the HTTP retry backoff")
    worker.add_argument("--jitter-seed", type=int, default=0,
                        help="seed of the retry-jitter stream (give each node "
                             "its own to decorrelate reconnect storms)")
    worker.add_argument("--chaos-plan", type=str, default="",
                        help="inject harness faults into this node for testing "
                             "recovery (kill = hard os._exit mid-lease): a JSON "
                             "plan file or inline 'seed=3,workers=2,kills=1'")
    _add_log_level_argument(worker)
    worker.set_defaults(func=_cmd_worker)

    submit = subparsers.add_parser(
        "submit",
        help="validate a sweep spec and queue it on a coordinator",
    )
    submit.add_argument("--coordinator", type=str, required=True,
                        help="coordinator base URL, e.g. http://127.0.0.1:8035")
    submit.add_argument("--spec", type=str, required=True,
                        help="JSON or TOML experiment spec file (same format as "
                             "repro sweep --spec)")
    submit.add_argument("--wait", action="store_true",
                        help="poll the job until it finishes and exit non-zero "
                             "if it failed")
    submit.add_argument("--poll", type=float, default=0.5,
                        help="seconds between --wait status polls")
    submit.add_argument("--timeout", type=float, default=None,
                        help="give up the --wait after this many seconds "
                             "(the job itself keeps running)")
    _add_log_level_argument(submit)
    submit.set_defaults(func=_cmd_submit)

    heatmap = subparsers.add_parser("heatmap", help="run the single-site sweep (Fig. 3 style)")
    _add_model_arguments(heatmap)
    heatmap.add_argument("--value", type=int, default=0)
    heatmap.add_argument("--images", type=int, default=64)
    heatmap.add_argument("--campaign-seed", type=int, default=0)
    heatmap.add_argument("--output", type=str, default="")
    heatmap.set_defaults(func=_cmd_heatmap)

    return parser


def _resume_hint(args: argparse.Namespace) -> str | None:
    """How to pick up an interrupted campaign/sweep where it left off."""
    command = getattr(args, "command", None)
    if command == "campaign":
        if getattr(args, "checkpoint", ""):
            return (f"resume with: repro campaign --checkpoint {args.checkpoint} "
                    "--resume (plus your original flags)")
        return "tip: pass --checkpoint <file> to make campaigns resumable"
    if command == "sweep":
        return (f"resume with: repro sweep --spec {args.spec} --sweep-dir "
                f"{args.sweep_dir} --resume (plus your original flags)")
    return None


class _Terminated(BaseException):
    """Raised by the SIGTERM handler; a BaseException so it cannot be
    swallowed by ``except Exception`` blocks between the signal and main()."""


def _raise_terminated(signum, frame):  # pragma: no cover - exercised via signal
    raise _Terminated()


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "log_level", None):
        set_verbosity(args.log_level)
    trace = getattr(args, "trace", "")
    if trace:
        TELEMETRY.configure(trace)
    # SIGTERM parity with Ctrl-C: a supervisor's polite kill (systemd stop,
    # docker stop, CI cancellation, kill <pid>) flushes the same state and
    # prints the same resume hint as SIGINT, then exits with 128+15.
    # Forked pool workers reset SIGTERM to SIG_DFL in _worker_setup, so the
    # supervisor's terminate_process() keeps its kill semantics.
    previous_sigterm = None
    try:
        previous_sigterm = signal.signal(signal.SIGTERM, _raise_terminated)
    except ValueError:  # pragma: no cover - main() called off the main thread
        pass
    try:
        return args.func(args)
    except (ValueError, OSError) as exc:
        # Spec/configuration mistakes are user errors: report them as one
        # clean message on stderr instead of a traceback mid-campaign.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Workers ignore SIGINT and the runner's finally blocks have already
        # terminated them and flushed every completed trial to the
        # checkpoint; all that is left is to say how to continue.
        print("\ninterrupted: workers stopped, completed trials are in the checkpoint",
              file=sys.stderr)
        hint = _resume_hint(args)
        if hint:
            print(hint, file=sys.stderr)
        return 130
    except _Terminated:
        # Same unwinding as KeyboardInterrupt: the raising handler ran inside
        # the campaign loop, so every finally block (pool teardown, checkpoint
        # fsync) has already executed by the time we get here.
        print("\nterminated: workers stopped, completed trials are in the checkpoint",
              file=sys.stderr)
        hint = _resume_hint(args)
        if hint:
            print(hint, file=sys.stderr)
        return 143
    finally:
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)
        if trace:
            TELEMETRY.close()


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
