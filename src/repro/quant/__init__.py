"""8-bit quantisation of float graphs (NVDLA-style symmetric int8).

The NVDLA small configuration used in the paper executes convolutions on
signed 8-bit operands and accumulates in wide integer registers; the SDP
post-processor rescales the accumulator back to int8 with an integer
multiplier and right shift.  This subpackage converts a trained float graph
into exactly that representation:

* :mod:`repro.quant.qscheme` — scale computation, integer requantisation.
* :mod:`repro.quant.calibrate` — activation-range collection on calibration data.
* :mod:`repro.quant.quantize` — graph-level post-training quantisation.
* :mod:`repro.quant.qlayers` — the quantised-layer records consumed by the
  compiler, CPU backend and accelerator emulator.
"""

from repro.quant.qscheme import (
    QuantParams,
    RequantParams,
    compute_requant_params,
    dequantize,
    quantize_tensor,
    requantize,
    symmetric_scale,
)
from repro.quant.calibrate import ActivationRanges, collect_activation_ranges
from repro.quant.qlayers import (
    QAdd,
    QConv,
    QGlobalAvgPool,
    QInput,
    QLinear,
    QMaxPool,
    QNode,
    QuantizedModel,
)
from repro.quant.quantize import quantize_graph

__all__ = [
    "QuantParams",
    "RequantParams",
    "symmetric_scale",
    "quantize_tensor",
    "dequantize",
    "requantize",
    "compute_requant_params",
    "ActivationRanges",
    "collect_activation_ranges",
    "QuantizedModel",
    "QNode",
    "QInput",
    "QConv",
    "QLinear",
    "QAdd",
    "QMaxPool",
    "QGlobalAvgPool",
    "quantize_graph",
]
