"""Activation-range calibration for post-training quantisation.

The quantiser needs, for every tensor flowing between layers, the dynamic
range it must represent in int8.  Ranges are collected by running the float
graph on a batch of calibration images and recording either the maximum
absolute value or a high percentile of the absolute values (percentile
calibration clips rare outliers and usually loses less accuracy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.graph import Graph


@dataclass
class ActivationRanges:
    """Per-node maximum absolute activation values observed during calibration."""

    max_abs: dict[str, float] = field(default_factory=dict)

    def get(self, name: str) -> float:
        if name not in self.max_abs:
            raise KeyError(f"no calibration range recorded for node {name!r}")
        return self.max_abs[name]

    def update(self, name: str, value: float) -> None:
        self.max_abs[name] = max(self.max_abs.get(name, 0.0), float(value))

    def __contains__(self, name: str) -> bool:
        return name in self.max_abs


def _reduce(values: np.ndarray, percentile: float | None) -> float:
    magnitudes = np.abs(values).reshape(-1)
    if magnitudes.size == 0:
        return 1e-6
    if percentile is None or percentile >= 100.0:
        return float(magnitudes.max())
    return float(np.percentile(magnitudes, percentile))


def collect_activation_ranges(
    graph: Graph,
    calibration_images: np.ndarray,
    batch_size: int = 32,
    percentile: float | None = 99.9,
) -> ActivationRanges:
    """Run calibration batches through a float graph and record ranges.

    Parameters
    ----------
    graph:
        The float graph (should already have BatchNorm folded if the ranges
        will be used to quantise the folded graph; calibrating the unfolded
        graph gives nearly identical ranges because folding is numerically
        equivalent in eval mode).
    calibration_images:
        Array of shape (N, C, H, W).
    batch_size:
        Batch size used for the forward passes.
    percentile:
        Percentile of absolute activations used as the range; ``None`` or
        100 uses the true maximum.
    """
    if calibration_images.ndim != 4:
        raise ValueError("calibration images must have shape (N, C, H, W)")
    graph.eval()
    ranges = ActivationRanges()
    for start in range(0, len(calibration_images), batch_size):
        batch = calibration_images[start : start + batch_size]
        _, activations = graph.forward(batch, return_activations=True)
        for name, value in activations.items():
            ranges.update(name, _reduce(value, percentile))
    return ranges
