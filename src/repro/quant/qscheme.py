"""Symmetric int8 quantisation primitives.

All quantisation in this library is *symmetric* (zero point fixed at 0),
matching the int8 mode of the NVDLA datapath: activations and weights are
signed 8-bit, accumulation is 32-bit (the hardware uses 34-bit partial sums),
and requantisation back to int8 is an integer multiply followed by a
rounding right shift — the exact operation implemented by the SDP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Representable range of the int8 datapath.
INT8_MIN = -128
INT8_MAX = 127

#: Number of fractional bits available to the requantisation multiplier.
REQUANT_MULTIPLIER_BITS = 16


@dataclass(frozen=True)
class QuantParams:
    """Quantisation parameters of one tensor (symmetric, so only a scale).

    ``scale`` maps quantised integers back to real values:
    ``real = scale * quantised``.  For per-channel schemes ``scale`` is an
    array with one entry per output channel.
    """

    scale: np.ndarray  # scalar array () or per-channel array (C,)
    per_channel: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "scale", np.asarray(self.scale, dtype=np.float64))
        if np.any(self.scale <= 0):
            raise ValueError("quantisation scale must be positive")


@dataclass(frozen=True)
class RequantParams:
    """Integer requantisation: ``out = round_shift(acc * multiplier, shift)``.

    ``multiplier`` and ``shift`` encode the real-valued ratio
    ``input_scale * weight_scale / output_scale`` as a fixed-point number
    ``multiplier / 2**shift`` with ``REQUANT_MULTIPLIER_BITS`` bits of
    precision, exactly as a hardware rescaler would.
    """

    multiplier: np.ndarray  # int64 scalar array or per-channel
    shift: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "multiplier", np.asarray(self.multiplier, dtype=np.int64))
        if self.shift < 0 or self.shift > 62:
            raise ValueError(f"requant shift must be in [0, 62], got {self.shift}")


def symmetric_scale(max_abs: float | np.ndarray, num_bits: int = 8) -> np.ndarray:
    """Scale mapping ``[-max_abs, max_abs]`` onto the signed ``num_bits`` range."""
    max_abs = np.asarray(max_abs, dtype=np.float64)
    qmax = float((1 << (num_bits - 1)) - 1)
    # Avoid zero scales for dead channels/tensors.
    max_abs = np.maximum(max_abs, 1e-8)
    return max_abs / qmax


def quantize_tensor(
    values: np.ndarray, params: QuantParams, channel_axis: int = 0
) -> np.ndarray:
    """Quantise a float tensor to int8 using ``params``.

    For per-channel parameters the scale is broadcast along ``channel_axis``.
    """
    scale = params.scale
    if params.per_channel:
        shape = [1] * values.ndim
        shape[channel_axis] = -1
        scale = scale.reshape(shape)
    q = np.round(values / scale)
    return np.clip(q, INT8_MIN, INT8_MAX).astype(np.int8)


def dequantize(values: np.ndarray, params: QuantParams, channel_axis: int = 0) -> np.ndarray:
    """Map int8 values back to real values."""
    scale = params.scale
    if params.per_channel:
        shape = [1] * values.ndim
        shape[channel_axis] = -1
        scale = scale.reshape(shape)
    return values.astype(np.float64) * scale


def compute_requant_params(
    input_scale: float,
    weight_scale: float | np.ndarray,
    output_scale: float,
) -> RequantParams:
    """Encode ``input_scale * weight_scale / output_scale`` as multiplier+shift.

    The returned fixed-point representation keeps
    :data:`REQUANT_MULTIPLIER_BITS` bits in the multiplier, i.e. the largest
    multiplier is ``2**REQUANT_MULTIPLIER_BITS - 1``, and the shift is shared
    across channels (per-channel ratios only differ in the multiplier), which
    mirrors how a single barrel shifter is shared in the SDP datapath.
    """
    ratio = np.asarray(input_scale, dtype=np.float64) * np.asarray(weight_scale, dtype=np.float64)
    ratio = ratio / float(output_scale)
    ratio = np.atleast_1d(ratio)
    if np.any(ratio <= 0):
        raise ValueError("requantisation ratio must be positive")

    # Choose the shift so the largest channel ratio still fits in the
    # multiplier width.
    max_ratio = float(ratio.max())
    shift = 0
    while (max_ratio * (1 << (shift + 1))) < (1 << REQUANT_MULTIPLIER_BITS) and shift < 62 - 1:
        shift += 1
    multiplier = np.round(ratio * (1 << shift)).astype(np.int64)
    multiplier = np.maximum(multiplier, 1)
    if multiplier.size == 1:
        multiplier = multiplier.reshape(())
    return RequantParams(multiplier=multiplier, shift=shift)


def rounding_right_shift(values: np.ndarray, shift: int) -> np.ndarray:
    """Arithmetic right shift with round-half-away-from-zero.

    This is the rounding mode of the NVDLA SDP truncation stage; it keeps the
    integer pipeline bit-exact between the CPU reference backend and the
    accelerator emulator.
    """
    values = np.asarray(values, dtype=np.int64)
    if shift == 0:
        return values
    offset = np.int64(1) << (shift - 1)
    positive = (values + offset) >> shift
    negative = -((-values + offset) >> shift)
    return np.where(values >= 0, positive, negative)


def requantize_owned(
    accumulator: np.ndarray,
    params: RequantParams,
    channel_axis: int = 1,
    relu: bool = False,
    saturate_to_int8: bool = True,
) -> np.ndarray:
    """Bit-identical :func:`requantize` tuned for the delta trial engine.

    A fault-injection trial requantises every layer of every evaluation
    batch, so this hot path trims the elementwise passes of the reference
    implementation without changing a single output bit:

    * the scaled value is built once (``acc * multiplier`` widened to
      int64) and every subsequent step mutates it in place — no
      ``np.where`` triple or intermediate temporaries;
    * round-half-away-from-zero for negatives uses the identity
      ``-((-v + o) >> s) == (v + o - 1) >> s`` (``o = 2**(s-1)``), one
      boolean mask instead of a second shifted copy;
    * fused ReLU layers skip the negative-rounding work entirely: a
      negative scaled value rounds to a non-positive integer under either
      rounding rule and the ReLU clamp maps it to 0 regardless.

    The input array is never modified (the first multiply allocates), but
    callers should treat the returned buffer as freshly owned.  Certified
    equal to :func:`requantize` over the full accumulator range by the
    quantisation property suite.
    """
    acc = np.asarray(accumulator)
    multiplier = params.multiplier
    if multiplier.ndim == 1:
        shape = [1] * acc.ndim
        shape[channel_axis] = -1
        multiplier = multiplier.reshape(shape)
    scaled = np.multiply(acc, multiplier, dtype=np.int64)
    shift = params.shift
    if shift:
        offset = np.int64(1) << np.int64(shift - 1)
        if relu and saturate_to_int8:
            # Negative values round to <= 0 under both rules; the ReLU
            # clamp erases the difference, so the positive-branch formula
            # is safe for the whole array.
            scaled += offset
            scaled >>= np.int64(shift)
        else:
            negative = scaled < 0
            scaled += offset
            np.subtract(scaled, negative, out=scaled, casting="unsafe")
            scaled >>= np.int64(shift)
    if saturate_to_int8:
        np.clip(scaled, 0 if relu else INT8_MIN, INT8_MAX, out=scaled)
        return scaled.astype(np.int8)
    if relu:
        np.maximum(scaled, 0, out=scaled)
    return scaled


def requantize(
    accumulator: np.ndarray,
    params: RequantParams,
    channel_axis: int = 1,
    relu: bool = False,
    saturate_to_int8: bool = True,
) -> np.ndarray:
    """Requantise a 32/64-bit accumulator tensor back to int8.

    Parameters
    ----------
    accumulator:
        Integer accumulator values (any integer dtype).
    params:
        Multiplier/shift pair from :func:`compute_requant_params`.
    channel_axis:
        Axis along which per-channel multipliers are broadcast
        (1 for NCHW activations, 1 for (N, C) linear outputs).
    relu:
        Apply ReLU (clamp at zero) before saturation, matching the SDP's
        fused activation.
    saturate_to_int8:
        Clamp to the int8 range and cast; disable to inspect raw rescaled
        values.
    """
    acc = np.asarray(accumulator, dtype=np.int64)
    multiplier = params.multiplier
    if multiplier.ndim == 1:
        shape = [1] * acc.ndim
        shape[channel_axis] = -1
        multiplier = multiplier.reshape(shape)
    scaled = rounding_right_shift(acc * multiplier, params.shift)
    if relu:
        scaled = np.maximum(scaled, 0)
    if saturate_to_int8:
        return np.clip(scaled, INT8_MIN, INT8_MAX).astype(np.int8)
    return scaled
