"""Quantised-layer records and the :class:`QuantizedModel` container.

A :class:`QuantizedModel` is the int8 form of a trained network: every node
carries int8 weights, int32 biases and the integer requantisation parameters
needed to execute the layer exactly as the accelerator's SDP would.  The
model is consumed by three components:

* :mod:`repro.runtime.cpu_backend` — the bit-exact software reference
  (the "Tengine on ARM/Ryzen" execution path of the paper's Table I),
* :mod:`repro.compiler` — lowering onto the MAC-array execution plan,
* :mod:`repro.baselines.software_fi` — graph-level fault injection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.quant.qscheme import QuantParams, RequantParams


@dataclass
class QNode:
    """Base class of all quantised nodes."""

    name: str
    inputs: list[str]

    @property
    def op_type(self) -> str:
        return type(self).__name__


@dataclass
class QInput(QNode):
    """Graph input: records the input quantisation scale and shape."""

    scale: float = 1.0
    shape: tuple[int, ...] = ()

    def quantize(self, images: np.ndarray) -> np.ndarray:
        """Quantise float input images to int8 using the input scale."""
        q = np.round(images / self.scale)
        return np.clip(q, -128, 127).astype(np.int8)


@dataclass
class QConv(QNode):
    """Quantised convolution with fused bias, requantisation and ReLU."""

    weight: np.ndarray = None  # int8, (OC, IC, K, K)
    bias: np.ndarray = None  # int64, (OC,)
    stride: int = 1
    padding: int = 0
    input_scale: float = 1.0
    weight_params: QuantParams = None
    output_scale: float = 1.0
    requant: RequantParams = None
    relu: bool = False

    @property
    def out_channels(self) -> int:
        return int(self.weight.shape[0])

    @property
    def in_channels(self) -> int:
        return int(self.weight.shape[1])

    @property
    def kernel_size(self) -> int:
        return int(self.weight.shape[2])

    def macs_per_output(self) -> int:
        """Multiply-accumulate operations needed for one output element."""
        return self.in_channels * self.kernel_size * self.kernel_size


@dataclass
class QDepthwiseConv(QConv):
    """Quantised depthwise convolution, compiler-expanded to a dense conv.

    The emulated NVDLA configuration has no native depthwise mode, so the
    compiler expands the per-channel filters into a one-hot-diagonal dense
    weight of shape ``(C, C, K, K)`` — output channel ``c`` sees non-zero
    taps only on input channel ``c`` — and executes it as an ordinary
    MAC-array convolution.  ``weight`` holds that *expanded* int8 tensor (it
    is what the convolution buffer actually stores, hence what
    memory-resident faults address); ``depth_weight`` keeps the compact
    ``(C, 1, K, K)`` int8 form for inspection and exact CPU execution.
    """

    depth_weight: np.ndarray = None  # int8, (C, 1, K, K)


@dataclass
class QLinear(QNode):
    """Quantised fully-connected layer.

    When ``requant`` is ``None`` the output is left as raw int32 accumulator
    values (plus bias); the final classifier layer uses this mode because the
    class decision is an argmax and never needs to be re-quantised.
    """

    weight: np.ndarray = None  # int8, (OUT, IN)
    bias: np.ndarray = None  # int64, (OUT,)
    input_scale: float = 1.0
    weight_params: QuantParams = None
    output_scale: float = 1.0
    requant: RequantParams | None = None
    relu: bool = False

    @property
    def out_features(self) -> int:
        return int(self.weight.shape[0])

    @property
    def in_features(self) -> int:
        return int(self.weight.shape[1])


@dataclass
class QAdd(QNode):
    """Quantised elementwise addition (the residual join).

    Each input is rescaled to the output scale with its own multiplier/shift
    before the integer addition, then optionally passed through ReLU.
    """

    input_scales: tuple[float, float] = (1.0, 1.0)
    output_scale: float = 1.0
    requant_a: RequantParams = None
    requant_b: RequantParams = None
    relu: bool = False


@dataclass
class QMaxPool(QNode):
    """Max pooling on int8 activations (order-preserving, no rescaling)."""

    kernel: int = 2
    stride: int = 2
    padding: int = 0


@dataclass
class QGlobalAvgPool(QNode):
    """Global average pooling: integer sum followed by requantisation."""

    spatial_size: int = 1  # H * W of the input feature map
    input_scale: float = 1.0
    output_scale: float = 1.0
    requant: RequantParams = None


@dataclass
class QuantizedModel:
    """A quantised network: nodes in topological order plus metadata."""

    nodes: list[QNode] = field(default_factory=list)
    output_name: str = ""
    input_shape: tuple[int, int, int] = (3, 32, 32)
    #: Mapping from original float-graph node names to quantised node names
    #: (fused ReLU nodes map onto their producer).
    name_map: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._by_name = {node.name: node for node in self.nodes}

    def node(self, name: str) -> QNode:
        if name not in self._by_name:
            raise KeyError(f"unknown quantised node {name!r}")
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self):
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def input_node(self) -> QInput:
        for node in self.nodes:
            if isinstance(node, QInput):
                return node
        raise RuntimeError("quantised model has no input node")

    def conv_like_nodes(self) -> list[QNode]:
        """Nodes that execute on the MAC array (convolutions and FC layers)."""
        return [n for n in self.nodes if isinstance(n, (QConv, QLinear))]

    def total_macs(self, input_shape: tuple[int, int, int] | None = None) -> int:
        """Total multiply-accumulate count of one inference.

        Spatial sizes are inferred by propagating the input shape through the
        conv/pool nodes; this is the number the performance model feeds on.
        """
        from repro.quant.shape_infer import infer_quantized_shapes

        shape = input_shape or self.input_shape
        shapes = infer_quantized_shapes(self, shape)
        total = 0
        for node in self.nodes:
            if isinstance(node, QConv):
                _, out_h, out_w = shapes[node.name]
                total += node.out_channels * out_h * out_w * node.macs_per_output()
            elif isinstance(node, QLinear):
                total += node.out_features * node.in_features
        return int(total)

    def summary(self) -> str:
        """One line per node: type, name, key parameters."""
        lines = []
        for node in self.nodes:
            extra = ""
            if isinstance(node, QConv):
                extra = (
                    f"oc={node.out_channels} ic={node.in_channels} k={node.kernel_size} "
                    f"s={node.stride} relu={node.relu}"
                )
            elif isinstance(node, QLinear):
                extra = f"out={node.out_features} in={node.in_features}"
            elif isinstance(node, QAdd):
                extra = f"relu={node.relu}"
            lines.append(f"{node.op_type:<16s} {node.name:<36s} {extra}")
        return "\n".join(lines)
