"""Post-training quantisation of a float graph into a :class:`QuantizedModel`.

The expected input is a *folded* float graph (BatchNorm already merged into
the preceding convolutions by :func:`repro.compiler.passes.fold_batchnorm`)
containing only ``Conv2D``, ``ReLU``, ``MaxPool2D``, ``AvgPool2D``,
``GlobalAvgPool2D``, ``Linear``, ``Add``, ``Flatten`` and ``Identity``
layers.  The quantiser:

1. assigns every activation tensor a symmetric int8 scale from the
   calibration ranges,
2. quantises weights per-tensor or per-channel,
3. converts biases to int32 at ``input_scale * weight_scale``,
4. fuses ReLU into the preceding Conv/Linear/Add node (as the SDP does),
5. emits integer requantisation parameters (multiplier + shift) per node.
"""

from __future__ import annotations

import numpy as np

from repro.nn.graph import Graph
from repro.nn.layers import (
    Add,
    AvgPool2D,
    Conv2D,
    DepthwiseConv2D,
    Flatten,
    GlobalAvgPool2D,
    Identity,
    Linear,
    MaxPool2D,
    ReLU,
)
from repro.quant.calibrate import ActivationRanges
from repro.quant.qlayers import (
    QAdd,
    QConv,
    QDepthwiseConv,
    QGlobalAvgPool,
    QInput,
    QLinear,
    QMaxPool,
    QuantizedModel,
)
from repro.quant.qscheme import (
    QuantParams,
    compute_requant_params,
    quantize_tensor,
    symmetric_scale,
)


def _weight_params(weight: np.ndarray, per_channel: bool) -> QuantParams:
    if per_channel:
        axes = tuple(range(1, weight.ndim))
        max_abs = np.abs(weight).max(axis=axes)
        return QuantParams(scale=symmetric_scale(max_abs), per_channel=True)
    return QuantParams(scale=symmetric_scale(float(np.abs(weight).max())), per_channel=False)


def _quantize_bias(
    bias: np.ndarray | None,
    out_channels: int,
    input_scale: float,
    weight_params: QuantParams,
) -> np.ndarray:
    """Quantise a float bias to int32 at scale ``input_scale * weight_scale``."""
    if bias is None:
        return np.zeros(out_channels, dtype=np.int64)
    bias_scale = input_scale * weight_params.scale  # scalar or per-channel
    q = np.round(np.asarray(bias, dtype=np.float64) / bias_scale)
    return np.clip(q, -(2**31), 2**31 - 1).astype(np.int64)


def _fused_relu_consumer(graph: Graph, name: str) -> str | None:
    """Return the name of a ReLU node that can be fused into ``name``.

    Fusion requires the ReLU to be the *only* consumer of the node so that no
    other consumer observes the pre-activation values.
    """
    consumers = graph.consumers(name)
    if len(consumers) == 1 and isinstance(graph.nodes[consumers[0]].layer, ReLU):
        return consumers[0]
    return None


def quantize_graph(
    graph: Graph,
    ranges: ActivationRanges,
    per_channel: bool = True,
) -> QuantizedModel:
    """Quantise a folded float graph.

    Parameters
    ----------
    graph:
        Folded float graph (no BatchNorm nodes).
    ranges:
        Calibration ranges from
        :func:`repro.quant.calibrate.collect_activation_ranges` (collected on
        this graph or on the unfolded original — the ranges are equivalent).
    per_channel:
        Quantise convolution/linear weights per output channel (True, the
        NVDLA default) or per tensor.
    """
    shapes = graph.infer_shapes()
    qnodes: list = []
    name_map: dict[str, str] = {Graph.INPUT: Graph.INPUT}
    #: activation scale of each emitted quantised node (keyed by q-node name)
    scales: dict[str, float] = {}

    input_scale = float(symmetric_scale(ranges.get(Graph.INPUT)))
    qnodes.append(
        QInput(name=Graph.INPUT, inputs=[], scale=input_scale, shape=tuple(graph.input_shape))
    )
    scales[Graph.INPUT] = input_scale

    fused_away: set[str] = set()
    output_name = Graph.INPUT

    for node_name in graph.topological_order():
        if node_name in fused_away:
            continue
        node = graph.nodes[node_name]
        layer = node.layer
        q_inputs = [name_map[src] for src in node.inputs]

        if isinstance(layer, Conv2D):
            relu_node = _fused_relu_consumer(graph, node_name)
            range_node = relu_node if relu_node is not None else node_name
            out_scale = float(symmetric_scale(ranges.get(range_node)))
            in_scale = scales[q_inputs[0]]
            wparams = _weight_params(layer.weight.value, per_channel)
            qweight = quantize_tensor(layer.weight.value, wparams, channel_axis=0)
            bias = layer.bias.value if layer.bias is not None else None
            qbias = _quantize_bias(bias, layer.out_channels, in_scale, wparams)
            requant = compute_requant_params(in_scale, wparams.scale, out_scale)
            qnodes.append(
                QConv(
                    name=node_name,
                    inputs=q_inputs,
                    weight=qweight,
                    bias=qbias,
                    stride=layer.stride,
                    padding=layer.padding,
                    input_scale=in_scale,
                    weight_params=wparams,
                    output_scale=out_scale,
                    requant=requant,
                    relu=relu_node is not None,
                )
            )
            scales[node_name] = out_scale
            name_map[node_name] = node_name
            if relu_node is not None:
                fused_away.add(relu_node)
                name_map[relu_node] = node_name
            output_name = node_name

        elif isinstance(layer, DepthwiseConv2D):
            relu_node = _fused_relu_consumer(graph, node_name)
            range_node = relu_node if relu_node is not None else node_name
            out_scale = float(symmetric_scale(ranges.get(range_node)))
            in_scale = scales[q_inputs[0]]
            wparams = _weight_params(layer.weight.value, per_channel)
            compact = quantize_tensor(layer.weight.value, wparams, channel_axis=0)
            # Expand to the one-hot-diagonal dense weight the MAC array runs:
            # output channel c reads input channel c only, every other tap is
            # an exact int8 zero.
            channels = layer.channels
            k = layer.kernel_size
            expanded = np.zeros((channels, channels, k, k), dtype=np.int8)
            expanded[np.arange(channels), np.arange(channels)] = compact[:, 0]
            bias = layer.bias.value if layer.bias is not None else None
            qbias = _quantize_bias(bias, channels, in_scale, wparams)
            requant = compute_requant_params(in_scale, wparams.scale, out_scale)
            qnodes.append(
                QDepthwiseConv(
                    name=node_name,
                    inputs=q_inputs,
                    weight=expanded,
                    depth_weight=compact,
                    bias=qbias,
                    stride=layer.stride,
                    padding=layer.padding,
                    input_scale=in_scale,
                    weight_params=wparams,
                    output_scale=out_scale,
                    requant=requant,
                    relu=relu_node is not None,
                )
            )
            scales[node_name] = out_scale
            name_map[node_name] = node_name
            if relu_node is not None:
                fused_away.add(relu_node)
                name_map[relu_node] = node_name
            output_name = node_name

        elif isinstance(layer, Linear):
            relu_node = _fused_relu_consumer(graph, node_name)
            in_scale = scales[q_inputs[0]]
            wparams = _weight_params(layer.weight.value, per_channel)
            qweight = quantize_tensor(layer.weight.value, wparams, channel_axis=0)
            bias = layer.bias.value if layer.bias is not None else None
            qbias = _quantize_bias(bias, layer.out_features, in_scale, wparams)
            is_final = len(graph.consumers(node_name)) == 0
            if is_final:
                # Keep the classifier logits as raw accumulators; argmax does
                # not need requantisation and this avoids saturating logits.
                requant = None
                out_scale = in_scale * float(np.mean(np.atleast_1d(wparams.scale)))
            else:
                range_node = relu_node if relu_node is not None else node_name
                out_scale = float(symmetric_scale(ranges.get(range_node)))
                requant = compute_requant_params(in_scale, wparams.scale, out_scale)
            qnodes.append(
                QLinear(
                    name=node_name,
                    inputs=q_inputs,
                    weight=qweight,
                    bias=qbias,
                    input_scale=in_scale,
                    weight_params=wparams,
                    output_scale=out_scale,
                    requant=requant,
                    relu=relu_node is not None and not is_final,
                )
            )
            scales[node_name] = out_scale
            name_map[node_name] = node_name
            if relu_node is not None and not is_final:
                fused_away.add(relu_node)
                name_map[relu_node] = node_name
            output_name = node_name

        elif isinstance(layer, Add):
            relu_node = _fused_relu_consumer(graph, node_name)
            range_node = relu_node if relu_node is not None else node_name
            out_scale = float(symmetric_scale(ranges.get(range_node)))
            scale_a = scales[q_inputs[0]]
            scale_b = scales[q_inputs[1]]
            qnodes.append(
                QAdd(
                    name=node_name,
                    inputs=q_inputs,
                    input_scales=(scale_a, scale_b),
                    output_scale=out_scale,
                    requant_a=compute_requant_params(scale_a, 1.0, out_scale),
                    requant_b=compute_requant_params(scale_b, 1.0, out_scale),
                    relu=relu_node is not None,
                )
            )
            scales[node_name] = out_scale
            name_map[node_name] = node_name
            if relu_node is not None:
                fused_away.add(relu_node)
                name_map[relu_node] = node_name
            output_name = node_name

        elif isinstance(layer, ReLU):
            # A standalone ReLU that could not be fused: express it as a QAdd
            # whose second operand is multiplied by zero, i.e. out = relu(a).
            # ReLU on symmetric int8 is exact, so the scale is unchanged.
            from repro.quant.qscheme import RequantParams

            src = q_inputs[0]
            scale = scales[src]
            qnodes.append(
                QAdd(
                    name=node_name,
                    inputs=[src, src],
                    input_scales=(scale, scale),
                    output_scale=scale,
                    requant_a=compute_requant_params(scale, 1.0, scale),
                    requant_b=RequantParams(multiplier=np.array(0, dtype=np.int64), shift=0),
                    relu=True,
                )
            )
            scales[node_name] = scale
            name_map[node_name] = node_name
            output_name = node_name

        elif isinstance(layer, (MaxPool2D,)):
            qnodes.append(
                QMaxPool(
                    name=node_name,
                    inputs=q_inputs,
                    kernel=layer.kernel_size,
                    stride=layer.stride,
                    padding=layer.padding,
                )
            )
            scales[node_name] = scales[q_inputs[0]]
            name_map[node_name] = node_name
            output_name = node_name

        elif isinstance(layer, (GlobalAvgPool2D, AvgPool2D)):
            in_shape = shapes[node.inputs[0]] if node.inputs[0] != Graph.INPUT else graph.input_shape
            if isinstance(layer, AvgPool2D):
                spatial = layer.kernel_size * layer.kernel_size
            else:
                spatial = int(in_shape[1]) * int(in_shape[2])
            in_scale = scales[q_inputs[0]]
            out_scale = float(symmetric_scale(ranges.get(node_name)))
            requant = compute_requant_params(in_scale, 1.0 / spatial, out_scale)
            qnodes.append(
                QGlobalAvgPool(
                    name=node_name,
                    inputs=q_inputs,
                    spatial_size=spatial,
                    input_scale=in_scale,
                    output_scale=out_scale,
                    requant=requant,
                )
            )
            scales[node_name] = out_scale
            name_map[node_name] = node_name
            output_name = node_name

        elif isinstance(layer, (Flatten, Identity)):
            # Pure reshapes carry no quantisation semantics; alias the input.
            name_map[node_name] = q_inputs[0]
            scales[node_name] = scales[q_inputs[0]]

        else:
            raise TypeError(
                f"cannot quantise layer {type(layer).__name__!r} at node {node_name!r}; "
                "fold BatchNorm before quantisation"
            )

    model_output = name_map[graph.output_name]
    if model_output == Graph.INPUT:
        model_output = output_name
    return QuantizedModel(
        nodes=qnodes,
        output_name=model_output,
        input_shape=tuple(graph.input_shape),
        name_map=name_map,
    )
