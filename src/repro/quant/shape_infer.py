"""Shape inference over a :class:`~repro.quant.qlayers.QuantizedModel`.

The compiler, timing model and CPU backend all need the spatial size of each
quantised node's output; this module propagates the input shape through the
quantised graph without executing it.
"""

from __future__ import annotations

from repro.nn.functional import conv_output_size
from repro.quant.qlayers import (
    QAdd,
    QConv,
    QGlobalAvgPool,
    QInput,
    QLinear,
    QMaxPool,
    QuantizedModel,
)


def infer_quantized_shapes(
    model: QuantizedModel, input_shape: tuple[int, int, int] | None = None
) -> dict[str, tuple[int, ...]]:
    """Return per-node output shapes (batch dimension excluded)."""
    shapes: dict[str, tuple[int, ...]] = {}
    base_shape = tuple(input_shape or model.input_shape)

    for node in model.nodes:
        if isinstance(node, QInput):
            shapes[node.name] = base_shape
            continue
        in_shapes = [shapes[src] for src in node.inputs]
        if isinstance(node, QConv):
            c, h, w = in_shapes[0]
            if c != node.in_channels:
                raise ValueError(
                    f"{node.name}: input has {c} channels, weights expect {node.in_channels}"
                )
            out_h = conv_output_size(h, node.kernel_size, node.stride, node.padding)
            out_w = conv_output_size(w, node.kernel_size, node.stride, node.padding)
            shapes[node.name] = (node.out_channels, out_h, out_w)
        elif isinstance(node, QMaxPool):
            c, h, w = in_shapes[0]
            out_h = conv_output_size(h, node.kernel, node.stride, node.padding)
            out_w = conv_output_size(w, node.kernel, node.stride, node.padding)
            shapes[node.name] = (c, out_h, out_w)
        elif isinstance(node, QGlobalAvgPool):
            c, _, _ = in_shapes[0]
            shapes[node.name] = (c,)
        elif isinstance(node, QAdd):
            if in_shapes[0] != in_shapes[1]:
                raise ValueError(
                    f"{node.name}: mismatched add input shapes {in_shapes[0]} vs {in_shapes[1]}"
                )
            shapes[node.name] = in_shapes[0]
        elif isinstance(node, QLinear):
            shapes[node.name] = (node.out_features,)
        else:
            raise TypeError(f"unsupported quantised node type {type(node).__name__}")
    return shapes
