"""Fault-site addressing for the MAC array.

The accelerator modelled here (and used in the paper) contains
``NUM_MAC_UNITS`` MAC units with ``MULTIPLIERS_PER_MAC`` signed 8-bit
multipliers each — an 8x8 arrangement, 64 multipliers in total.  A
:class:`FaultSite` names one multiplier by its (MAC unit, multiplier lane)
coordinates; a :class:`FaultUniverse` enumerates all sites of a given array
geometry and supports the random / exhaustive selections used by the
campaign strategies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Number of MAC units in the paper's accelerator configuration.
NUM_MAC_UNITS = 8

#: Number of multipliers inside each MAC unit.
MULTIPLIERS_PER_MAC = 8

#: Memory surfaces a :class:`MemorySite` can address: the weight region of
#: the convolution buffer, the activation region, and the input-DMA staging
#: buffer.  Order is significant — it defines the canonical sort order of
#: mixed-surface configurations.
MEMORY_SURFACES = ("weight", "activation", "input")

#: Size of the injectable byte window per memory surface.  Memory sites are
#: addressed relative to the start of the surface and wrap modulo the actual
#: operand size at execution time, so the window is geometry-independent:
#: every strategy samples from the same ``MEMORY_WINDOW_BYTES * 8`` sites per
#: surface regardless of layer shapes.
MEMORY_WINDOW_BYTES = 64


@dataclass(frozen=True, order=True)
class FaultSite:
    """One multiplier in the MAC array, addressed as (MAC unit, lane).

    Both coordinates are zero-based; the paper's figures use one-based IDs,
    which :meth:`display` produces.
    """

    mac_unit: int
    multiplier: int

    def validate(self, num_macs: int = NUM_MAC_UNITS, muls_per_mac: int = MULTIPLIERS_PER_MAC) -> None:
        if not 0 <= self.mac_unit < num_macs:
            raise ValueError(f"MAC unit index {self.mac_unit} out of range [0, {num_macs})")
        if not 0 <= self.multiplier < muls_per_mac:
            raise ValueError(
                f"multiplier index {self.multiplier} out of range [0, {muls_per_mac})"
            )

    def flat_index(self, muls_per_mac: int = MULTIPLIERS_PER_MAC) -> int:
        """Flat index of this site in row-major (MAC-major) order."""
        return self.mac_unit * muls_per_mac + self.multiplier

    @classmethod
    def from_flat_index(cls, index: int, muls_per_mac: int = MULTIPLIERS_PER_MAC) -> "FaultSite":
        return cls(mac_unit=index // muls_per_mac, multiplier=index % muls_per_mac)

    def display(self) -> str:
        """One-based label matching the paper's figures, e.g. ``"MAC 1 / MUL 8"``."""
        return f"MAC {self.mac_unit + 1} / MUL {self.multiplier + 1}"


@dataclass(frozen=True, order=True)
class MemorySite:
    """One bit of a CBUF/CSB-addressed memory surface.

    ``surface`` names the region (see :data:`MEMORY_SURFACES`), ``byte_offset``
    the byte relative to the surface start, and ``bit`` the bit within that
    byte.  Offsets are interpreted modulo the actual operand size when the
    fault is applied (the surface is re-used for every layer's staging), so a
    site is valid for any layer shape.
    """

    surface: str
    byte_offset: int
    bit: int

    def validate(
        self,
        window_bytes: int = MEMORY_WINDOW_BYTES,
        _unused: int | None = None,
    ) -> None:
        if self.surface not in MEMORY_SURFACES:
            raise ValueError(
                f"unknown memory surface {self.surface!r}; expected one of {MEMORY_SURFACES}"
            )
        if not 0 <= self.byte_offset < window_bytes:
            raise ValueError(
                f"byte offset {self.byte_offset} out of range [0, {window_bytes})"
            )
        if not 0 <= self.bit < 8:
            raise ValueError(f"bit index {self.bit} out of range [0, 8)")

    def flat_index(self, window_bytes: int = MEMORY_WINDOW_BYTES) -> int:
        """Flat index within the surface's window, byte-major."""
        return self.byte_offset * 8 + self.bit

    @classmethod
    def from_flat_index(cls, surface: str, index: int) -> "MemorySite":
        return cls(surface=surface, byte_offset=index // 8, bit=index % 8)

    def display(self) -> str:
        """Human-readable label, e.g. ``"CBUF weight byte 12 bit 3"``."""
        return f"CBUF {self.surface} byte {self.byte_offset} bit {self.bit}"


def site_sort_key(site) -> tuple:
    """Total order over mixed :class:`FaultSite` / :class:`MemorySite` sets.

    Datapath sites sort first (in their natural MAC-major order), memory
    sites after them by (surface, byte, bit) — so configurations that mix
    both site types still have a deterministic canonical order, and
    homogeneous datapath configurations keep their historical ordering.
    """
    if isinstance(site, MemorySite):
        surface_rank = MEMORY_SURFACES.index(site.surface)
        return (1, surface_rank, site.byte_offset, site.bit)
    return (0, site.mac_unit, site.multiplier)


class FaultUniverse:
    """The set of all injectable fault sites of a MAC-array geometry."""

    def __init__(
        self,
        num_macs: int = NUM_MAC_UNITS,
        muls_per_mac: int = MULTIPLIERS_PER_MAC,
        memory_window_bytes: int = MEMORY_WINDOW_BYTES,
    ):
        if num_macs <= 0 or muls_per_mac <= 0:
            raise ValueError("array dimensions must be positive")
        if memory_window_bytes <= 0:
            raise ValueError("memory window must be positive")
        self.num_macs = num_macs
        self.muls_per_mac = muls_per_mac
        #: Injectable byte window per memory surface (geometry-independent).
        self.memory_window_bytes = memory_window_bytes

    @property
    def size(self) -> int:
        """Total number of multipliers (fault sites)."""
        return self.num_macs * self.muls_per_mac

    def all_sites(self) -> list[FaultSite]:
        """All sites in MAC-major order."""
        return [
            FaultSite(mac, mul)
            for mac in range(self.num_macs)
            for mul in range(self.muls_per_mac)
        ]

    def sites_in_mac(self, mac_unit: int) -> list[FaultSite]:
        """All multiplier sites of a single MAC unit."""
        if not 0 <= mac_unit < self.num_macs:
            raise ValueError(f"MAC unit index {mac_unit} out of range")
        return [FaultSite(mac_unit, mul) for mul in range(self.muls_per_mac)]

    def sites_at_position(self, multiplier: int) -> list[FaultSite]:
        """Sites at the same multiplier position across all MAC units."""
        if not 0 <= multiplier < self.muls_per_mac:
            raise ValueError(f"multiplier index {multiplier} out of range")
        return [FaultSite(mac, multiplier) for mac in range(self.num_macs)]

    def random_sites(self, count: int, rng: np.random.Generator) -> list[FaultSite]:
        """Select ``count`` distinct sites uniformly at random."""
        if not 0 <= count <= self.size:
            raise ValueError(f"cannot select {count} sites out of {self.size}")
        indices = rng.choice(self.size, size=count, replace=False)
        return [FaultSite.from_flat_index(int(i), self.muls_per_mac) for i in sorted(indices)]

    def accumulator_sites(self) -> list[FaultSite]:
        """One injectable accumulator-stage site per MAC unit.

        Accumulator-stage fault models attack a MAC unit's partial-sum bus
        rather than an individual multiplier; by convention such a model is
        armed at multiplier lane 0 of the MAC unit it targets.
        """
        return [FaultSite(mac, 0) for mac in range(self.num_macs)]

    def random_accumulator_sites(self, count: int, rng: np.random.Generator) -> list[FaultSite]:
        """Select ``count`` distinct MAC-unit accumulators uniformly at random."""
        if not 0 <= count <= self.num_macs:
            raise ValueError(
                f"cannot select {count} accumulators out of {self.num_macs} MAC units"
            )
        macs = rng.choice(self.num_macs, size=count, replace=False)
        return [FaultSite(int(mac), 0) for mac in sorted(macs)]

    # ------------------------------------------------------------------
    # Memory-resident sites (CBUF/CSB surfaces)
    # ------------------------------------------------------------------
    @property
    def memory_size(self) -> int:
        """Number of injectable bit sites per memory surface."""
        return self.memory_window_bytes * 8

    def _check_surface(self, surface: str) -> None:
        if surface not in MEMORY_SURFACES:
            raise ValueError(
                f"unknown memory surface {surface!r}; expected one of {MEMORY_SURFACES}"
            )

    def memory_sites(self, surface: str) -> list[MemorySite]:
        """All bit sites of one memory surface, byte-major order."""
        self._check_surface(surface)
        return [
            MemorySite(surface, byte, bit)
            for byte in range(self.memory_window_bytes)
            for bit in range(8)
        ]

    def random_memory_sites(
        self, count: int, rng: np.random.Generator, surface: str
    ) -> list[MemorySite]:
        """Select ``count`` distinct bit sites of one surface at random."""
        self._check_surface(surface)
        if not 0 <= count <= self.memory_size:
            raise ValueError(
                f"cannot select {count} memory sites out of {self.memory_size}"
            )
        indices = rng.choice(self.memory_size, size=count, replace=False)
        return [MemorySite.from_flat_index(surface, int(i)) for i in sorted(indices)]

    def contains(self, site: FaultSite) -> bool:
        if isinstance(site, MemorySite):
            return (
                site.surface in MEMORY_SURFACES
                and 0 <= site.byte_offset < self.memory_window_bytes
                and 0 <= site.bit < 8
            )
        return 0 <= site.mac_unit < self.num_macs and 0 <= site.multiplier < self.muls_per_mac

    def __contains__(self, site: FaultSite) -> bool:
        return self.contains(site)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"FaultUniverse({self.num_macs}x{self.muls_per_mac})"
