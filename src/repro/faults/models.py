"""Fault models applied to the 18-bit multiplier product bus.

A fault model answers one question: *given the fault-free product value a
multiplier would have produced in this cycle, what value appears on its
output bus instead?*  The paper's hardware supports overriding the bus with
zero or a programmable constant; additional models (stuck-at-one, single-bit
flips, transient pulses) are provided because the paper explicitly notes
that "other fault models can easily be incorporated".

All models operate on the *signed* interpretation of the 18-bit bus; the
conversion helpers in :mod:`repro.utils.bitops` define the bus semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.bitops import PRODUCT_WIDTH, saturate, to_signed, to_unsigned


class FaultModel:
    """Base class for product-level fault models.

    Subclasses implement :meth:`apply`, which transforms an array of
    fault-free signed product values into faulty values, and declare whether
    the faulty value depends on the original product (:attr:`value_dependent`)
    — value-independent models admit a much faster vectorised execution path.
    """

    #: True when the faulty value depends on the fault-free product.
    value_dependent: bool = False

    #: True when the fault is persistent across all cycles of an inference.
    persistent: bool = True

    def apply(self, products: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
        """Return the faulty products corresponding to ``products``."""
        raise NotImplementedError

    def constant_override(self) -> int | None:
        """The signed constant this model injects, if it is a constant override.

        Returns ``None`` for value-dependent models.
        """
        return None

    def label(self) -> str:
        """Short label used in result tables (e.g. ``"const(0)"``)."""
        return type(self).__name__

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return self.label()


@dataclass(frozen=True)
class ConstantValue(FaultModel):
    """Override the product bus with a programmable signed constant.

    This is the paper's "pulse fault" / "variable error" injector: the
    ``fdata`` register value is driven onto all selected bits.  The constant
    is given as a *signed* value and must fit on the 18-bit bus.
    """

    value: int
    value_dependent: bool = False
    persistent: bool = True

    def __post_init__(self) -> None:
        lo = -(1 << (PRODUCT_WIDTH - 1))
        hi = (1 << (PRODUCT_WIDTH - 1)) - 1
        if not lo <= self.value <= hi:
            raise ValueError(
                f"constant {self.value} does not fit on the signed {PRODUCT_WIDTH}-bit product bus"
            )

    def apply(self, products: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
        return np.full_like(np.asarray(products, dtype=np.int64), self.value)

    def constant_override(self) -> int:
        return int(self.value)

    def bus_pattern(self) -> int:
        """The unsigned 18-bit pattern written to the ``fdata`` register."""
        return int(to_unsigned(self.value, PRODUCT_WIDTH))

    def label(self) -> str:
        return f"const({self.value})"


@dataclass(frozen=True)
class StuckAtZero(FaultModel):
    """All 18 product bits stuck at logic 0 (the paper's stuck-at error)."""

    value_dependent: bool = False
    persistent: bool = True

    def apply(self, products: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
        return np.zeros_like(np.asarray(products, dtype=np.int64))

    def constant_override(self) -> int:
        return 0

    def label(self) -> str:
        return "stuck-at-0"


@dataclass(frozen=True)
class StuckAtOne(FaultModel):
    """All 18 product bits stuck at logic 1 (bus pattern 0x3FFFF, i.e. -1)."""

    value_dependent: bool = False
    persistent: bool = True

    def apply(self, products: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
        return np.full_like(np.asarray(products, dtype=np.int64), -1)

    def constant_override(self) -> int:
        return -1

    def label(self) -> str:
        return "stuck-at-1"


@dataclass(frozen=True)
class BitFlip(FaultModel):
    """Invert one bit of the product bus in every cycle.

    Unlike the constant overrides, the resulting value depends on the
    fault-free product, so the emulator has to materialise the affected
    products before applying the model.
    """

    bit: int
    value_dependent: bool = True
    persistent: bool = True

    def __post_init__(self) -> None:
        if not 0 <= self.bit < PRODUCT_WIDTH:
            raise ValueError(f"bit index must be in [0, {PRODUCT_WIDTH}), got {self.bit}")

    def apply(self, products: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
        unsigned = to_unsigned(np.asarray(products, dtype=np.int64), PRODUCT_WIDTH)
        flipped = unsigned ^ (1 << self.bit)
        return to_signed(flipped, PRODUCT_WIDTH)

    def label(self) -> str:
        return f"bitflip({self.bit})"


@dataclass(frozen=True)
class TransientPulse(FaultModel):
    """Override a random fraction of the multiplier's cycles with a constant.

    This approximates a transient (non-persistent) pulse: only ``duty`` of
    the products computed by the faulty multiplier during an inference are
    replaced by ``value``; the rest pass through unmodified.
    """

    value: int
    duty: float = 0.5
    value_dependent: bool = True  # requires the original products (to keep some)
    persistent: bool = False

    def __post_init__(self) -> None:
        lo = -(1 << (PRODUCT_WIDTH - 1))
        hi = (1 << (PRODUCT_WIDTH - 1)) - 1
        if not lo <= self.value <= hi:
            raise ValueError(f"constant {self.value} does not fit on the product bus")
        if not 0.0 <= self.duty <= 1.0:
            raise ValueError("duty must be in [0, 1]")

    def apply(self, products: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
        if rng is None:
            rng = np.random.default_rng(0)
        products = np.asarray(products, dtype=np.int64)
        mask = rng.random(products.shape) < self.duty
        return np.where(mask, np.int64(self.value), products)

    def label(self) -> str:
        return f"pulse({self.value},duty={self.duty:g})"


def saturate_product(values: np.ndarray) -> np.ndarray:
    """Clamp injected values onto the representable 18-bit signed range.

    Fault models already validate their constants, but arithmetic on faulty
    values (e.g. in tests) can overflow the bus; this helper re-applies the
    hardware truncation.
    """
    return saturate(np.asarray(values, dtype=np.int64), PRODUCT_WIDTH)
