"""Fault models applied to the accelerator datapath.

A fault model answers one question: *given the fault-free value a datapath
stage would have produced in this cycle, what value appears on its output
bus instead?*  The paper's hardware supports overriding the 18-bit
multiplier product bus with zero or a programmable constant; additional
models (stuck-at-one, single-bit flips, transient pulses, accumulator-stage
stuck-ats) are provided because the paper explicitly notes that "other
fault models can easily be incorporated".

Models are grouped by the :attr:`~FaultModel.stage` they attack:

* ``"product"`` (default) — the signed 18-bit multiplier product bus; the
  conversion helpers in :mod:`repro.utils.bitops` define the bus semantics.
* ``"accumulator"`` — the signed 22-bit partial-sum bus between a MAC
  unit's adder tree and the CACC; one such fault corrupts every partial
  sum the MAC unit forwards, regardless of which multiplier lane produced
  the operands.

Cycle-dependent models (:attr:`~FaultModel.cycle_dependent`) additionally
receive the index of the atomic operation being executed, derived purely
from the hardware schedule, so that the vectorised engine and the scalar
reference engine reproduce the exact same transient behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.bitops import (
    PARTIAL_SUM_WIDTH,
    PRODUCT_WIDTH,
    saturate,
    to_signed,
    to_unsigned,
)

_MASK64 = (1 << 64) - 1


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finaliser: a stateless, portable 64-bit mixer.

    Both engines hand it uint64 cycle indices (the scalar reference engine
    wraps its per-multiplier counter in a one-element array), so a single
    vectorised implementation defines the pseudo-random stream.
    """
    z = np.asarray(x, dtype=np.uint64) + np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


class FaultModel:
    """Base class for datapath fault models.

    Subclasses implement :meth:`apply`, which transforms an array of
    fault-free signed bus values into faulty values, and declare whether
    the faulty value depends on the original value (:attr:`value_dependent`)
    — value-independent models admit a much faster vectorised execution path.
    """

    #: True when the faulty value depends on the fault-free product.
    value_dependent: bool = False

    #: True when the fault is persistent across all cycles of an inference.
    persistent: bool = True

    #: Datapath stage the model attacks: ``"product"`` (the 18-bit
    #: multiplier output bus) or ``"accumulator"`` (the 22-bit partial-sum
    #: bus between a MAC unit's adder tree and the CACC).
    stage: str = "product"

    #: True when the faulty value depends on *which cycle* produced it;
    #: such models implement :meth:`apply_at` instead of :meth:`apply`.
    cycle_dependent: bool = False

    #: True when :meth:`apply` never consumes the engine's RNG stream, i.e.
    #: the faulty values are a pure function of the inputs (and, for
    #: cycle-dependent models, the cycle indices).  Only such models can
    #: join fused multi-trial evaluation — models that draw random numbers
    #: (e.g. :class:`TransientPulse`) would observe a different draw order
    #: under fusion.  The base-class default is ``False`` so a new
    #: stochastic model is excluded from fusion unless it explicitly opts
    #: in; silently admitting one would break the records-bit-identical
    #: invariant between fused and per-trial evaluation.
    rng_free: bool = False

    def apply(self, products: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
        """Return the faulty products corresponding to ``products``."""
        raise NotImplementedError

    def apply_at(self, products: np.ndarray, cycles: np.ndarray) -> np.ndarray:
        """Return the faulty products for values produced at ``cycles``.

        ``cycles`` holds, for each element of ``products``, the zero-based
        index of the atomic operation that produced it (the per-layer cycle
        counter of the hardware schedule).  Only cycle-dependent models
        implement this; all others ignore cycle indices.
        """
        raise NotImplementedError(f"{type(self).__name__} is not cycle-dependent")

    def constant_override(self) -> int | None:
        """The signed constant this model injects, if it is a constant override.

        Returns ``None`` for value-dependent models.
        """
        return None

    def label(self) -> str:
        """Short label used in result tables (e.g. ``"const(0)"``)."""
        return type(self).__name__

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return self.label()


@dataclass(frozen=True)
class ConstantValue(FaultModel):
    """Override the product bus with a programmable signed constant.

    This is the paper's "pulse fault" / "variable error" injector: the
    ``fdata`` register value is driven onto all selected bits.  The constant
    is given as a *signed* value and must fit on the 18-bit bus.
    """

    value: int
    value_dependent: bool = False
    persistent: bool = True
    rng_free: bool = True

    def __post_init__(self) -> None:
        lo = -(1 << (PRODUCT_WIDTH - 1))
        hi = (1 << (PRODUCT_WIDTH - 1)) - 1
        if not lo <= self.value <= hi:
            raise ValueError(
                f"constant {self.value} does not fit on the signed {PRODUCT_WIDTH}-bit product bus"
            )

    def apply(self, products: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
        return np.full_like(np.asarray(products, dtype=np.int64), self.value)

    def constant_override(self) -> int:
        return int(self.value)

    def bus_pattern(self) -> int:
        """The unsigned 18-bit pattern written to the ``fdata`` register."""
        return int(to_unsigned(self.value, PRODUCT_WIDTH))

    def label(self) -> str:
        return f"const({self.value})"


@dataclass(frozen=True)
class StuckAtZero(FaultModel):
    """All 18 product bits stuck at logic 0 (the paper's stuck-at error)."""

    value_dependent: bool = False
    persistent: bool = True
    rng_free: bool = True

    def apply(self, products: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
        return np.zeros_like(np.asarray(products, dtype=np.int64))

    def constant_override(self) -> int:
        return 0

    def label(self) -> str:
        return "stuck-at-0"


@dataclass(frozen=True)
class StuckAtOne(FaultModel):
    """All 18 product bits stuck at logic 1 (bus pattern 0x3FFFF, i.e. -1)."""

    value_dependent: bool = False
    persistent: bool = True
    rng_free: bool = True

    def apply(self, products: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
        return np.full_like(np.asarray(products, dtype=np.int64), -1)

    def constant_override(self) -> int:
        return -1

    def label(self) -> str:
        return "stuck-at-1"


@dataclass(frozen=True)
class BitFlip(FaultModel):
    """Invert one bit of the product bus in every cycle.

    Unlike the constant overrides, the resulting value depends on the
    fault-free product, so the emulator has to materialise the affected
    products before applying the model.
    """

    bit: int
    value_dependent: bool = True
    persistent: bool = True
    rng_free: bool = True

    def __post_init__(self) -> None:
        if not 0 <= self.bit < PRODUCT_WIDTH:
            raise ValueError(f"bit index must be in [0, {PRODUCT_WIDTH}), got {self.bit}")

    def apply(self, products: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
        unsigned = to_unsigned(np.asarray(products, dtype=np.int64), PRODUCT_WIDTH)
        flipped = unsigned ^ (1 << self.bit)
        return to_signed(flipped, PRODUCT_WIDTH)

    def label(self) -> str:
        return f"bitflip({self.bit})"


@dataclass(frozen=True)
class TransientPulse(FaultModel):
    """Override a random fraction of the multiplier's cycles with a constant.

    This approximates a transient (non-persistent) pulse: only ``duty`` of
    the products computed by the faulty multiplier during an inference are
    replaced by ``value``; the rest pass through unmodified.
    """

    value: int
    duty: float = 0.5
    value_dependent: bool = True  # requires the original products (to keep some)
    persistent: bool = False
    rng_free: bool = False  # firing pattern comes from the engine RNG stream

    def __post_init__(self) -> None:
        lo = -(1 << (PRODUCT_WIDTH - 1))
        hi = (1 << (PRODUCT_WIDTH - 1)) - 1
        if not lo <= self.value <= hi:
            raise ValueError(f"constant {self.value} does not fit on the product bus")
        if not 0.0 <= self.duty <= 1.0:
            raise ValueError("duty must be in [0, 1]")

    def apply(self, products: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
        if rng is None:
            rng = np.random.default_rng(0)
        products = np.asarray(products, dtype=np.int64)
        mask = rng.random(products.shape) < self.duty
        return np.where(mask, np.int64(self.value), products)

    def label(self) -> str:
        return f"pulse({self.value},duty={self.duty:g})"


@dataclass(frozen=True)
class TransientCycleFault(FaultModel):
    """Deterministic per-cycle transient: override random-looking cycles.

    Unlike :class:`TransientPulse` (whose firing pattern depends on the
    order in which an engine happens to draw random numbers), this model
    decides whether it fires in a given cycle from the cycle index alone: a
    stateless 64-bit hash of ``(salt, cycle)`` is compared against ``duty``.
    Both engines therefore produce *bit-identical* faulty accumulators — the
    property the differential test suite certifies for every fault model.

    The cycle index is the per-layer atomic-operation counter of the
    hardware schedule (it resets when a new layer is launched, as the CACC
    does); every multiplier of the array cycles once per atomic operation.
    """

    value: int
    duty: float = 0.5
    salt: int = 0
    value_dependent: bool = True  # untouched cycles keep the original product
    persistent: bool = False
    cycle_dependent: bool = True
    rng_free: bool = True  # firing derives from cycle indices, not the RNG

    def __post_init__(self) -> None:
        lo = -(1 << (PRODUCT_WIDTH - 1))
        hi = (1 << (PRODUCT_WIDTH - 1)) - 1
        if not lo <= self.value <= hi:
            raise ValueError(f"constant {self.value} does not fit on the product bus")
        if not 0.0 <= self.duty <= 1.0:
            raise ValueError("duty must be in [0, 1]")

    def fires(self, cycles: np.ndarray) -> np.ndarray:
        """Boolean mask of the cycles in which the transient fires."""
        cycles = np.asarray(cycles)
        if (cycles < 0).any():
            raise ValueError("cycle indices must be non-negative")
        threshold = int(round(self.duty * float(1 << 64)))
        if threshold >= (1 << 64):
            return np.ones(cycles.shape, dtype=bool)
        if threshold <= 0:
            return np.zeros(cycles.shape, dtype=bool)
        keyed = cycles.astype(np.uint64) ^ np.uint64((self.salt * 0x9E3779B97F4A7C15) & _MASK64)
        return _splitmix64(keyed) < np.uint64(threshold)

    def apply_at(self, products: np.ndarray, cycles: np.ndarray) -> np.ndarray:
        products = np.asarray(products, dtype=np.int64)
        mask = np.broadcast_to(self.fires(cycles), products.shape)
        return np.where(mask, np.int64(self.value), products)

    def apply(self, products: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
        raise TypeError(
            "TransientCycleFault is cycle-dependent; engines must call apply_at() "
            "with the schedule's cycle indices"
        )

    def label(self) -> str:
        return f"transient({self.value},duty={self.duty:g},salt={self.salt})"


@dataclass(frozen=True)
class AccumulatorStuckAt(FaultModel):
    """One bit of a MAC unit's partial-sum bus stuck at 0 or 1.

    This attacks the accumulator stage rather than a multiplier: every
    partial sum the MAC unit's adder tree forwards to the CACC has bit
    ``bit`` forced to ``stuck``, regardless of which multiplier lanes
    contributed.  The site such a model is armed at addresses the MAC unit;
    by convention it is armed at multiplier lane 0 (see
    :meth:`FaultUniverse.accumulator_sites
    <repro.faults.sites.FaultUniverse.accumulator_sites>`), and the lane
    coordinate is ignored.
    """

    bit: int
    stuck: int = 0
    value_dependent: bool = True
    persistent: bool = True
    stage: str = "accumulator"
    rng_free: bool = True

    def __post_init__(self) -> None:
        if not 0 <= self.bit < PARTIAL_SUM_WIDTH:
            raise ValueError(
                f"bit index must be in [0, {PARTIAL_SUM_WIDTH}), got {self.bit}"
            )
        if self.stuck not in (0, 1):
            raise ValueError(f"stuck value must be 0 or 1, got {self.stuck}")

    def apply(self, partials: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
        """Force the stuck bit on signed partial-sum bus value(s)."""
        bus = to_unsigned(np.asarray(partials, dtype=np.int64), PARTIAL_SUM_WIDTH)
        if self.stuck:
            bus = bus | np.int64(1 << self.bit)
        else:
            bus = bus & np.int64(~(1 << self.bit))
        return to_signed(bus, PARTIAL_SUM_WIDTH)

    def label(self) -> str:
        return f"acc-stuck{self.stuck}@{self.bit}"


class MemoryFaultModel(FaultModel):
    """Base class of memory-resident fault models (CBUF/CSB surfaces).

    Where datapath models transform bus values cycle by cycle, a memory
    model flips stored operand *bytes*: the site it is armed at is a
    :class:`~repro.faults.sites.MemorySite` naming (surface, byte, bit), and
    the engines corrupt the staged operand bytes before any arithmetic runs.

    ``dwell_start``/``dwell`` define the fault's dwell window in units of
    MAC-array layer executions: the flip is present for the GEMM ops whose
    per-inference execution index lies in ``[dwell_start, dwell_start +
    dwell)`` and is scrubbed (refreshed from DRAM) outside it.  The
    execution index resets at the start of every inference and increments
    once per conv/FC op in plan order, so dwell behaviour is invariant to
    batch chunking.
    """

    #: Memory surface the model corrupts (``"weight"``, ``"activation"`` or
    #: ``"input"``); must match the surface of the armed site.
    surface: str = "weight"

    stage: str = "memory"
    value_dependent: bool = True  # a flip XORs the stored value
    persistent: bool = True
    #: Corruption is a pure function of the stored bytes and the execution
    #: index — no RNG — but memory configurations are still excluded from
    #: fused evaluation (see :func:`repro.accelerator.engine.config_fusable`)
    #: because the fused path shares one clean operand staging across trials.
    rng_free: bool = True

    def __init__(self, dwell_start: int = 0, dwell: int = 1):
        if dwell_start < 0:
            raise ValueError(f"dwell_start must be >= 0, got {dwell_start}")
        if dwell < 1:
            raise ValueError(f"dwell must be >= 1, got {dwell}")
        self.dwell_start = dwell_start
        self.dwell = dwell

    def active_at(self, exec_index: int) -> bool:
        """True when the flip is resident during GEMM op ``exec_index``."""
        return self.dwell_start <= exec_index < self.dwell_start + self.dwell

    def apply(self, products: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
        raise TypeError(
            f"{type(self).__name__} corrupts stored operand bytes, not bus values; "
            "engines must apply it to the staged surface before the GEMM"
        )

    def __eq__(self, other) -> bool:
        return (
            type(self) is type(other)
            and self.dwell_start == other.dwell_start
            and self.dwell == other.dwell
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.dwell_start, self.dwell))

    def label(self) -> str:
        return f"{self._family}[dwell={self.dwell}@{self.dwell_start}]"


class WeightBitFlip(MemoryFaultModel):
    """A bit flip resident in the CBUF weight surface for a dwell window.

    The armed site's byte offset addresses the target layer's packed int8
    weight bytes (C-order, modulo the weight size), so the flipped weight
    byte corrupts every output that reads it — across all samples of the
    batch — for as long as the flip dwells.
    """

    surface = "weight"
    _family = "weight-bitflip"


class ActivationBitFlip(MemoryFaultModel):
    """A bit flip resident in the CBUF activation surface for a dwell window.

    The byte offset addresses one int8 activation byte of the layer's staged
    input feature map, per sample (the surface is re-filled for every sample
    the schedule streams through the array), modulo the per-sample size.
    """

    surface = "activation"
    _family = "activation-bitflip"


class InputCorruption(MemoryFaultModel):
    """A bit flip in the input-DMA staging buffer.

    Fires when the runtime DMA-transfers the quantised input into the
    accelerator — conceptually before the first layer launches — so it has
    no dwell window: the corrupted input propagates through the whole
    inference regardless of scrub timing.  The byte offset addresses one
    byte of each sample's quantised input, modulo the per-sample size.
    """

    surface = "input"
    _family = "input-corrupt"

    def __init__(self):
        super().__init__(dwell_start=0, dwell=1)

    def active_at(self, exec_index: int) -> bool:
        return True

    def label(self) -> str:
        return "input-corrupt"


def flip_int8_bytes(
    array: np.ndarray, offsets_and_bits: list[tuple[int, int]], per_sample: bool
) -> np.ndarray:
    """Return a copy of an int8 array with the given stored bits inverted.

    ``offsets_and_bits`` holds (byte offset, bit) pairs; offsets wrap modulo
    the corrupted region (the whole array, or each leading-axis sample when
    ``per_sample`` is set — modelling a surface that is re-staged per
    sample).  This is the *vectorised* corruption path: the XOR runs on a
    uint8 view of the copy.  The scalar reference engine implements the same
    transformation independently with per-byte Python integer arithmetic;
    the differential suite certifies the two bit-identical.
    """
    if array.dtype != np.int8:
        raise TypeError(f"memory corruption expects int8 operands, got {array.dtype}")
    out = array.copy()
    if per_sample:
        view = out.view(np.uint8).reshape(out.shape[0], -1)
        size = view.shape[1]
        for offset, bit in offsets_and_bits:
            view[:, offset % size] ^= np.uint8(1 << bit)
    else:
        view = out.view(np.uint8).reshape(-1)
        size = view.size
        for offset, bit in offsets_and_bits:
            view[offset % size] ^= np.uint8(1 << bit)
    return out


def saturate_product(values: np.ndarray) -> np.ndarray:
    """Clamp injected values onto the representable 18-bit signed range.

    Fault models already validate their constants, but arithmetic on faulty
    values (e.g. in tests) can overflow the bus; this helper re-applies the
    hardware truncation.
    """
    return saturate(np.asarray(values, dtype=np.int64), PRODUCT_WIDTH)
