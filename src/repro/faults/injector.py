"""The per-multiplier fault injection block.

In the paper's hardware every multiplier output bit passes through a 2:1
multiplexer: when the corresponding ``fsel`` bit is set, the bit is driven
from the ``fdata`` register instead of from the multiplier (Fig. 1).  The
paper uses two configurations of that block:

* **constant error** — ``fdata`` is a synthesis-time constant (cheap, +18 LUT),
* **variable error** — ``fdata`` is a runtime register (0.71 % more LUTs).

:class:`FaultInjector` is the software model of one such 18-bit block, and
:class:`InjectionConfig` is a complete campaign-level configuration: which
sites are armed and with which fault model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.faults.models import FaultModel
from repro.faults.sites import FaultSite
from repro.utils.bitops import PRODUCT_WIDTH, to_signed, to_unsigned


class FaultInjector:
    """Bit-level model of one 18-bit fault injector block.

    Parameters
    ----------
    fsel:
        18-bit select mask; bit ``i`` set means output bit ``i`` is driven
        from ``fdata`` instead of the multiplier product.
    fdata:
        18-bit data pattern supplying the overridden bits.
    """

    def __init__(self, fsel: int = 0, fdata: int = 0):
        self.configure(fsel, fdata)

    def configure(self, fsel: int, fdata: int) -> None:
        """Program the select mask and data pattern (as unsigned bus values)."""
        mask = (1 << PRODUCT_WIDTH) - 1
        if not 0 <= fsel <= mask:
            raise ValueError(f"fsel must fit in {PRODUCT_WIDTH} bits")
        if not 0 <= fdata <= mask:
            raise ValueError(f"fdata must fit in {PRODUCT_WIDTH} bits")
        self.fsel = int(fsel)
        self.fdata = int(fdata)

    @property
    def enabled(self) -> bool:
        """True when at least one bit is overridden."""
        return self.fsel != 0

    def apply_bus(self, product_bus: int) -> int:
        """Apply the mux to an unsigned 18-bit bus value."""
        return (product_bus & ~self.fsel) | (self.fdata & self.fsel)

    def apply_signed(self, product: int | np.ndarray) -> int | np.ndarray:
        """Apply the mux to signed product value(s) and return signed value(s)."""
        bus = to_unsigned(product, PRODUCT_WIDTH)
        if isinstance(bus, np.ndarray):
            out = (bus & ~np.int64(self.fsel)) | np.int64(self.fdata & self.fsel)
        else:
            out = self.apply_bus(bus)
        return to_signed(out, PRODUCT_WIDTH)

    @classmethod
    def full_override(cls, value: int) -> "FaultInjector":
        """An injector that overrides every bit with the signed ``value``."""
        mask = (1 << PRODUCT_WIDTH) - 1
        return cls(fsel=mask, fdata=int(to_unsigned(value, PRODUCT_WIDTH)) & mask)

    @classmethod
    def disabled(cls) -> "FaultInjector":
        return cls(fsel=0, fdata=0)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"FaultInjector(fsel=0x{self.fsel:05x}, fdata=0x{self.fdata:05x})"


@dataclass
class InjectionConfig:
    """A complete fault-injection configuration for one emulation run.

    Maps armed :class:`FaultSite` objects to the :class:`FaultModel` applied
    at that site.  A single run may arm any number of sites (the paper's
    Fig. 2 arms 1–7 sites with the same model).
    """

    faults: dict[FaultSite, FaultModel] = field(default_factory=dict)

    @classmethod
    def single(cls, site: FaultSite, model: FaultModel) -> "InjectionConfig":
        return cls(faults={site: model})

    @classmethod
    def uniform(cls, sites: list[FaultSite], model: FaultModel) -> "InjectionConfig":
        """Arm all ``sites`` with the same fault model."""
        return cls(faults={site: model for site in sites})

    @classmethod
    def fault_free(cls) -> "InjectionConfig":
        return cls(faults={})

    @property
    def enabled(self) -> bool:
        return bool(self.faults)

    @property
    def sites(self) -> list[FaultSite]:
        return sorted(self.faults.keys())

    def model_at(self, site: FaultSite) -> FaultModel | None:
        return self.faults.get(site)

    def add(self, site: FaultSite, model: FaultModel) -> None:
        if site in self.faults:
            raise ValueError(f"site {site} is already armed")
        self.faults[site] = model

    def describe(self) -> str:
        """Short human-readable description used in logs and result records."""
        if not self.faults:
            return "fault-free"
        parts = []
        for site, model in sorted(self.faults.items()):
            where = (
                f"MAC {site.mac_unit + 1} / ACC"
                if model.stage == "accumulator"
                else site.display()
            )
            parts.append(f"{where}={model.label()}")
        return "; ".join(parts)

    def __len__(self) -> int:
        return len(self.faults)
