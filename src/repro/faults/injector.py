"""The per-multiplier fault injection block.

In the paper's hardware every multiplier output bit passes through a 2:1
multiplexer: when the corresponding ``fsel`` bit is set, the bit is driven
from the ``fdata`` register instead of from the multiplier (Fig. 1).  The
paper uses two configurations of that block:

* **constant error** — ``fdata`` is a synthesis-time constant (cheap, +18 LUT),
* **variable error** — ``fdata`` is a runtime register (0.71 % more LUTs).

:class:`FaultInjector` is the software model of one such 18-bit block, and
:class:`InjectionConfig` is a complete campaign-level configuration: which
sites are armed and with which fault model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.faults.models import FaultModel
from repro.faults.sites import FaultSite, MemorySite, site_sort_key
from repro.utils.bitops import PRODUCT_WIDTH, to_signed, to_unsigned


class FaultInjector:
    """Bit-level model of one 18-bit fault injector block.

    Parameters
    ----------
    fsel:
        18-bit select mask; bit ``i`` set means output bit ``i`` is driven
        from ``fdata`` instead of the multiplier product.
    fdata:
        18-bit data pattern supplying the overridden bits.
    """

    def __init__(self, fsel: int = 0, fdata: int = 0):
        self.configure(fsel, fdata)

    def configure(self, fsel: int, fdata: int) -> None:
        """Program the select mask and data pattern (as unsigned bus values)."""
        mask = (1 << PRODUCT_WIDTH) - 1
        if not 0 <= fsel <= mask:
            raise ValueError(f"fsel must fit in {PRODUCT_WIDTH} bits")
        if not 0 <= fdata <= mask:
            raise ValueError(f"fdata must fit in {PRODUCT_WIDTH} bits")
        self.fsel = int(fsel)
        self.fdata = int(fdata)

    @property
    def enabled(self) -> bool:
        """True when at least one bit is overridden."""
        return self.fsel != 0

    def apply_bus(self, product_bus: int) -> int:
        """Apply the mux to an unsigned 18-bit bus value."""
        return (product_bus & ~self.fsel) | (self.fdata & self.fsel)

    def apply_signed(self, product: int | np.ndarray) -> int | np.ndarray:
        """Apply the mux to signed product value(s) and return signed value(s)."""
        bus = to_unsigned(product, PRODUCT_WIDTH)
        if isinstance(bus, np.ndarray):
            out = (bus & ~np.int64(self.fsel)) | np.int64(self.fdata & self.fsel)
        else:
            out = self.apply_bus(bus)
        return to_signed(out, PRODUCT_WIDTH)

    @classmethod
    def full_override(cls, value: int) -> "FaultInjector":
        """An injector that overrides every bit with the signed ``value``."""
        mask = (1 << PRODUCT_WIDTH) - 1
        return cls(fsel=mask, fdata=int(to_unsigned(value, PRODUCT_WIDTH)) & mask)

    @classmethod
    def disabled(cls) -> "FaultInjector":
        return cls(fsel=0, fdata=0)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"FaultInjector(fsel=0x{self.fsel:05x}, fdata=0x{self.fdata:05x})"


@dataclass
class InjectionConfig:
    """A complete fault-injection configuration for one emulation run.

    Maps armed :class:`FaultSite` objects to the :class:`FaultModel` applied
    at that site.  A single run may arm any number of sites (the paper's
    Fig. 2 arms 1–7 sites with the same model).
    """

    faults: dict[FaultSite, FaultModel] = field(default_factory=dict)

    @classmethod
    def single(cls, site: FaultSite, model: FaultModel) -> "InjectionConfig":
        return cls(faults={site: model})

    @classmethod
    def uniform(cls, sites: list[FaultSite], model: FaultModel) -> "InjectionConfig":
        """Arm all ``sites`` with the same fault model."""
        return cls(faults={site: model for site in sites})

    @classmethod
    def fault_free(cls) -> "InjectionConfig":
        return cls(faults={})

    @property
    def enabled(self) -> bool:
        return bool(self.faults)

    @property
    def sites(self) -> list[FaultSite]:
        return sorted(self.faults.keys(), key=site_sort_key)

    def model_at(self, site: FaultSite) -> FaultModel | None:
        return self.faults.get(site)

    def add(self, site: FaultSite, model: FaultModel) -> None:
        if site in self.faults:
            raise ValueError(f"site {site} is already armed")
        self.faults[site] = model

    def memory_faults(self) -> dict[MemorySite, FaultModel]:
        """The memory-resident (CBUF/CSB) part of this configuration."""
        return {
            site: model for site, model in self.faults.items() if model.stage == "memory"
        }

    def datapath_config(self) -> "InjectionConfig":
        """This configuration minus its memory-resident faults.

        The CMAC/CACC datapath (and the register-file encoding) only ever
        sees this part; the engines apply memory faults to the staged
        operand bytes before any datapath arithmetic runs.
        """
        remaining = {
            site: model for site, model in self.faults.items() if model.stage != "memory"
        }
        if len(remaining) == len(self.faults):
            return self
        return InjectionConfig(faults=remaining)

    def active_memory_flips(self, exec_index: int) -> tuple[list, list]:
        """(weight flips, activation flips) dwelling at GEMM op ``exec_index``.

        Each flip is a ``(byte_offset, bit)`` pair, in canonical site order.
        Input-surface faults are excluded — they fire at the DMA boundary
        (the runtime facade applies them to the quantised input), not at
        layer staging time.  Raises when a memory model is armed at a site
        of a different surface.
        """
        weight_flips: list[tuple[int, int]] = []
        activation_flips: list[tuple[int, int]] = []
        for site in self.sites:
            model = self.faults[site]
            if model.stage != "memory":
                continue
            surface = getattr(site, "surface", None)
            if surface != model.surface:
                raise ValueError(
                    f"memory model {model.label()} targets the {model.surface!r} "
                    f"surface but is armed at site {site!r}"
                )
            if surface == "input" or not model.active_at(exec_index):
                continue
            flip = (site.byte_offset, site.bit)
            if surface == "weight":
                weight_flips.append(flip)
            else:
                activation_flips.append(flip)
        return weight_flips, activation_flips

    def input_flips(self) -> list[tuple[int, int]]:
        """(byte, bit) flips of input-surface faults, canonical site order."""
        return [
            (site.byte_offset, site.bit)
            for site in self.sites
            if self.faults[site].stage == "memory"
            and self.faults[site].surface == "input"
        ]

    def describe(self) -> str:
        """Short human-readable description used in logs and result records."""
        if not self.faults:
            return "fault-free"
        parts = []
        for site in self.sites:
            model = self.faults[site]
            if model.stage == "memory":
                where = site.display()
            elif model.stage == "accumulator":
                where = f"MAC {site.mac_unit + 1} / ACC"
            else:
                where = site.display()
            parts.append(f"{where}={model.label()}")
        return "; ".join(parts)

    def __len__(self) -> int:
        return len(self.faults)
