"""AXI4-Lite-style register file controlling the fault injectors.

The paper's platform programs the fault injection logic from the ARM cores
through an AXI4-Lite slave.  The register map modelled here follows Fig. 1:

===========  =====================================================
register     meaning
===========  =====================================================
``SEL_A``    32-bit mask, bit ``i`` arms the injector of multiplier
             ``i`` (flat index 0–31, MAC-major order).
``SEL_B``    32-bit mask for multipliers 32–63.
``FSEL``     18-bit per-bit select mask shared by all armed injectors.
``FDATA``    18-bit data pattern driven onto the selected bits.
===========  =====================================================

The register file is purely a control-plane model: the emulator reads the
decoded :class:`~repro.faults.injector.InjectionConfig` out of it before an
inference.  Keeping the register semantics separate lets the tests assert
that a campaign configuration survives the trip through the "hardware"
interface unchanged, exactly as the real platform's driver must guarantee.
"""

from __future__ import annotations

from repro.faults.injector import FaultInjector, InjectionConfig
from repro.faults.models import ConstantValue, FaultModel
from repro.faults.sites import FaultSite, FaultUniverse
from repro.utils.bitops import PRODUCT_WIDTH, to_signed, to_unsigned

#: Word-aligned register offsets on the AXI4-Lite slave.
REG_SEL_A = 0x00
REG_SEL_B = 0x04
REG_FSEL = 0x08
REG_FDATA = 0x0C
REG_CTRL = 0x10

#: CTRL register bits.
CTRL_ENABLE = 0x1

_WORD_MASK = 0xFFFF_FFFF
_PRODUCT_MASK = (1 << PRODUCT_WIDTH) - 1


class FaultInjectionRegisterFile:
    """Software model of the platform's fault-injection register file."""

    def __init__(self, universe: FaultUniverse | None = None):
        self.universe = universe or FaultUniverse()
        if self.universe.size > 64:
            raise ValueError(
                "the AXI register map only addresses 64 multipliers "
                f"(got {self.universe.size})"
            )
        self._regs: dict[int, int] = {
            REG_SEL_A: 0,
            REG_SEL_B: 0,
            REG_FSEL: 0,
            REG_FDATA: 0,
            REG_CTRL: 0,
        }

    # ------------------------------------------------------------------
    # Raw bus access
    # ------------------------------------------------------------------
    def write(self, offset: int, value: int) -> None:
        """Write a 32-bit word to a register offset."""
        if offset not in self._regs:
            raise ValueError(f"invalid register offset 0x{offset:02x}")
        value = int(value) & _WORD_MASK
        if offset in (REG_FSEL, REG_FDATA):
            value &= _PRODUCT_MASK
        self._regs[offset] = value

    def read(self, offset: int) -> int:
        """Read a 32-bit word from a register offset."""
        if offset not in self._regs:
            raise ValueError(f"invalid register offset 0x{offset:02x}")
        return self._regs[offset]

    # ------------------------------------------------------------------
    # Driver-level helpers
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Disarm all injectors."""
        for offset in self._regs:
            self._regs[offset] = 0

    def arm_sites(self, sites: list[FaultSite], value: int) -> None:
        """Arm ``sites`` with a full-bus constant override of signed ``value``.

        This mirrors what the platform driver does for the paper's
        experiments: set the per-multiplier select bits, select all 18
        product bits and program the constant.
        """
        sel_a = 0
        sel_b = 0
        for site in sites:
            if not isinstance(site, FaultSite):
                raise ValueError(
                    f"site {site!r} is not a multiplier site: the SEL_A/SEL_B "
                    "registers address product-bus injectors only, and arming a "
                    f"{type(site).__name__} here would silently re-target a multiplier"
                )
            site.validate(self.universe.num_macs, self.universe.muls_per_mac)
            flat = site.flat_index(self.universe.muls_per_mac)
            if flat < 32:
                sel_a |= 1 << flat
            else:
                sel_b |= 1 << (flat - 32)
        self.write(REG_SEL_A, sel_a)
        self.write(REG_SEL_B, sel_b)
        self.write(REG_FSEL, _PRODUCT_MASK)
        self.write(REG_FDATA, int(to_unsigned(value, PRODUCT_WIDTH)))
        self.write(REG_CTRL, CTRL_ENABLE)

    def armed_sites(self) -> list[FaultSite]:
        """Decode the currently armed fault sites from ``SEL_A``/``SEL_B``."""
        sites = []
        combined = (self.read(REG_SEL_B) << 32) | self.read(REG_SEL_A)
        for flat in range(self.universe.size):
            if combined & (1 << flat):
                sites.append(FaultSite.from_flat_index(flat, self.universe.muls_per_mac))
        return sites

    def injector(self) -> FaultInjector:
        """The bit-level injector configured by ``FSEL``/``FDATA``."""
        if not self.read(REG_CTRL) & CTRL_ENABLE:
            return FaultInjector.disabled()
        return FaultInjector(fsel=self.read(REG_FSEL), fdata=self.read(REG_FDATA))

    def decode_config(self) -> InjectionConfig:
        """Decode the register state into an :class:`InjectionConfig`.

        The decoded model is the constant override produced by applying the
        ``FSEL``/``FDATA`` mux to a zero product — which is exactly what a
        persistent override looks like when all product bits are selected.
        Partial-bit selections are not representable as a single constant and
        are rejected; the runtime programs full-bus overrides only, like the
        paper's driver.
        """
        if not self.read(REG_CTRL) & CTRL_ENABLE:
            return InjectionConfig.fault_free()
        fsel = self.read(REG_FSEL)
        if fsel == 0:
            return InjectionConfig.fault_free()
        if fsel != _PRODUCT_MASK:
            raise ValueError(
                "partial-bit overrides cannot be decoded into a constant fault model; "
                "use the emulator's bit-level injector path instead"
            )
        value = int(to_signed(self.read(REG_FDATA), PRODUCT_WIDTH))
        model: FaultModel = ConstantValue(value)
        return InjectionConfig.uniform(self.armed_sites(), model)

    def program_config(self, config: InjectionConfig) -> None:
        """Program a campaign configuration into the registers.

        Only uniform constant-override configurations are representable on
        the register map (one shared ``FDATA``); mixed-model configurations
        must be applied directly to the emulator.
        """
        if not config.enabled:
            self.reset()
            return
        wrong_stage = {
            model.stage for model in config.faults.values() if model.stage != "product"
        }
        if wrong_stage:
            labels = [
                f"{site.display()}={model.label()}"
                for site, model in config.faults.items()
                if model.stage != "product"
            ]
            raise ValueError(
                f"the register file drives the 18-bit multiplier product bus only; "
                f"{sorted(wrong_stage)}-stage fault(s) {labels} are not representable "
                "and would decode back as product-bus constants — apply them directly "
                "to the emulator instead"
            )
        constants = {model.constant_override() for model in config.faults.values()}
        if len(constants) != 1 or None in constants:
            raise ValueError(
                "the register file can only encode a single shared constant override; "
                f"got models {[m.label() for m in config.faults.values()]}"
            )
        self.arm_sites(config.sites, constants.pop())
