"""Fault models, fault sites and the per-multiplier fault injection logic.

The paper equips the output of every 8-bit multiplier in the NVDLA CMAC with
an 18-bit fault injector: a per-bit multiplexer that can override the
product bus with zero (a stuck-at fault) or a constant value (a pulse
fault), selected and programmed over AXI4-Lite.  This subpackage models that
block exactly:

* :mod:`repro.faults.models` — what value replaces the product,
* :mod:`repro.faults.sites` — which multiplier (MAC unit, lane) is affected,
* :mod:`repro.faults.injector` — the mux logic applied to product values,
* :mod:`repro.faults.registers` — the ``sel_a``/``sel_b``/``fsel``/``fdata``
  register file driven by the runtime.
"""

from repro.faults.models import (
    AccumulatorStuckAt,
    BitFlip,
    ConstantValue,
    FaultModel,
    StuckAtOne,
    StuckAtZero,
    TransientCycleFault,
    TransientPulse,
)
from repro.faults.sites import FaultSite, FaultUniverse
from repro.faults.injector import FaultInjector, InjectionConfig
from repro.faults.registers import FaultInjectionRegisterFile

__all__ = [
    "FaultModel",
    "StuckAtZero",
    "StuckAtOne",
    "ConstantValue",
    "BitFlip",
    "TransientPulse",
    "TransientCycleFault",
    "AccumulatorStuckAt",
    "FaultSite",
    "FaultUniverse",
    "FaultInjector",
    "InjectionConfig",
    "FaultInjectionRegisterFile",
]
